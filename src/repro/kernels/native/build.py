"""Self-building JIT layer for the native kernel tier.

Stdlib only (``subprocess`` + ``sysconfig`` + ``shutil``): at first use the
``.c`` sources under ``src/`` are compiled into one shared library with
whatever C compiler the host offers, cached under a directory keyed by the
SHA-256 of the sources and compile command.  A changed source (or flag)
changes the key, so stale builds are never loaded — they are simply left
behind in the cache and rebuilt under the new key.  When no compiler
exists the build step returns ``None`` and the tier registry reports
``native`` unavailable; nothing in the tier-1 test suite ever triggers a
compile (the default tier is resolved without one).

The cache location is ``$REPRO_KERNEL_CACHE`` when set, else
``$XDG_CACHE_HOME/repro/kernels`` (``~/.cache/repro/kernels``).  Builds
are atomic (compile to a temp name, ``os.replace``), so concurrent ranks
of the procs backend can race on a cold cache safely: every rank either
finds the finished ``.so`` or produces an identical one.

Sanitizer profiles: ``$REPRO_KERNEL_SANITIZE`` selects instrumented
builds (``asan``, ``ubsan``, ``tsan``, or a comma list such as
``asan,ubsan``).  The sanitizer flags are part of the compile command
and therefore of the SHA-256 cache key, so instrumented and plain
builds never collide.  Loading an instrumented library into an
*uninstrumented* CPython needs loader support — see
:func:`sanitizer_env` and ``python -m repro.kernels.native.build
--sanitize-env`` — and TSan builds cannot be loaded into CPython at
all (the interposed runtime crashes the interpreter); the race check
drives them through a native harness instead
(``tests/test_kernel_sanitize.py``).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import sysconfig
import tempfile
from pathlib import Path

#: Name of the produced shared library (per-hash directory disambiguates).
LIB_NAME = "librepro_kernels.so"

#: Portable optimization flags.  Deliberately conservative: no
#: -ffast-math / -funsafe-math-optimizations — the bitwise-parity contract
#: requires strict IEEE semantics in the exact source order.
CFLAGS = ("-O3", "-fPIC", "-shared", "-std=c99", "-fvisibility=hidden")

#: Preferred flag set: same as CFLAGS plus OpenMP, which the row-parallel
#: SpGEMM uses for its rank-local threads.  Builds try this first and fall
#: back to the serial CFLAGS when the toolchain lacks OpenMP support (old
#: clang without libomp, musl cc, ...); the kernels guard every pragma with
#: ``#ifdef _OPENMP`` and run identical per-row code serially, so which
#: variant got built never changes results — only whether
#: ``$REPRO_KERNEL_THREADS > 1`` can actually fan out.
CFLAGS_OPENMP = CFLAGS + ("-fopenmp",)

#: Flag sets in build preference order.
FLAG_SETS = (CFLAGS_OPENMP, CFLAGS)

#: Environment knob selecting sanitizer-instrumented builds.
SANITIZE_ENV = "REPRO_KERNEL_SANITIZE"

#: Per-profile sanitizer flags, in canonical profile order.  ``asan`` and
#: ``ubsan`` compose (``asan,ubsan``); ``tsan`` is exclusive — GCC/Clang
#: refuse -fsanitize=thread combined with -fsanitize=address.
SANITIZER_CFLAGS: dict[str, tuple[str, ...]] = {
    "asan": ("-fsanitize=address",),
    "ubsan": ("-fsanitize=undefined", "-fno-sanitize-recover=undefined"),
    "tsan": ("-fsanitize=thread",),
}

#: Flags every instrumented build gets: frame pointers and debug info so
#: sanitizer reports carry file:line instead of raw addresses.
SANITIZE_COMMON_CFLAGS = ("-fno-omit-frame-pointer", "-g")

#: Shared-runtime library names per profile, tried in order.  GCC links
#: the shared runtime by default; Clang needs ``-shared-libasan`` (added
#: by :func:`sanitize_cflags`) and ships the runtime under the
#: ``libclang_rt`` name.
SANITIZER_RUNTIMES: dict[str, tuple[str, ...]] = {
    "asan": ("libasan.so", "libclang_rt.asan-x86_64.so"),
    "tsan": ("libtsan.so", "libclang_rt.tsan-x86_64.so"),
}

_SRC_DIR = Path(__file__).resolve().parent / "src"

#: Last build failure (compiler stderr / exception text) for diagnostics;
#: ``None`` after a successful or not-yet-attempted build.
last_error: str | None = None


class BuildFailure:
    """Structured record of the most recent *failed compile attempt*.

    Distinguishes "a compiler ran and rejected the sources" (``compiler``
    set, ``stderr`` carries its diagnostics) from "no compiler on the
    host" (``last_failure`` stays ``None``; only ``last_error`` is set).
    The tier resolver uses that distinction: an explicit ``native``
    request raises :class:`repro.exceptions.KernelBuildError` for the
    former and keeps the warned pure fallback for the latter.
    """

    __slots__ = ("message", "compiler", "stderr")

    def __init__(self, message: str, compiler: str | None = None,
                 stderr: str | None = None):
        self.message = message
        self.compiler = compiler
        self.stderr = stderr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BuildFailure({self.message!r}, compiler={self.compiler!r})"


#: Most recent failed compile attempt; ``None`` when no compile has
#: failed (including "no compiler found" — see :class:`BuildFailure`).
last_failure: BuildFailure | None = None


def sanitize_profiles(raw: str | None = None) -> tuple[str, ...]:
    """Parse ``$REPRO_KERNEL_SANITIZE`` into a canonical profile tuple.

    Accepts a comma/space-separated subset of ``asan``/``ubsan``/``tsan``
    (case-insensitive, duplicates collapsed, canonical order).  Raises
    :class:`ValueError` for unknown names and for ``tsan`` combined with
    another sanitizer — loud failure is right for an explicit debug
    knob; a typo must not silently produce an uninstrumented build.
    """
    if raw is None:
        raw = os.environ.get(SANITIZE_ENV, "")
    names = {tok for tok in raw.replace(",", " ").lower().split() if tok}
    if not names:
        return ()
    unknown = names - set(SANITIZER_CFLAGS)
    if unknown:
        raise ValueError(
            f"unknown sanitizer profile(s) {sorted(unknown)!r} in "
            f"${SANITIZE_ENV} (choose from {' | '.join(SANITIZER_CFLAGS)})")
    if "tsan" in names and len(names) > 1:
        raise ValueError(
            f"${SANITIZE_ENV}: 'tsan' cannot be combined with other "
            "sanitizers (the compilers reject -fsanitize=thread together "
            "with address/undefined)")
    return tuple(p for p in SANITIZER_CFLAGS if p in names)


def _is_clang(compiler: str | None) -> bool:
    return compiler is not None and "clang" in Path(compiler).name


def sanitize_cflags(profiles: tuple[str, ...] | None = None,
                    compiler: str | None = None) -> tuple[str, ...]:
    """Extra compile flags for the active sanitizer profiles (``()`` when
    uninstrumented).  ``compiler`` decides Clang-specific handling:
    Clang defaults to a *static* ASan runtime, which cannot back a
    dlopen'ed library — ``-shared-libasan`` switches it to the shared
    runtime that :func:`sanitizer_env` preloads."""
    profs = sanitize_profiles() if profiles is None else tuple(profiles)
    if not profs:
        return ()
    flags: list[str] = []
    for p in profs:
        flags.extend(SANITIZER_CFLAGS[p])
    if "asan" in profs and _is_clang(compiler):
        flags.append("-shared-libasan")
    return tuple(flags) + SANITIZE_COMMON_CFLAGS


def flag_sets(compiler: str | None = None) -> tuple[tuple[str, ...], ...]:
    """The flag sets a build will try, in preference order, with the
    active sanitizer profile folded in.  Sanitizer flags are part of the
    compile command and hence of :func:`source_hash` — an instrumented
    build can never be served from (or poison) the plain cache."""
    extra = sanitize_cflags(compiler=compiler)
    if not extra:
        return FLAG_SETS
    return tuple(fs + extra for fs in FLAG_SETS)


def sanitizer_runtime(profile: str,
                      compiler: str | None = None) -> str | None:
    """Absolute path of ``profile``'s shared runtime library, resolved
    through the compiler's ``-print-file-name``; ``None`` when the
    toolchain does not ship one (or there is no compiler)."""
    names = SANITIZER_RUNTIMES.get(profile, ())
    cc = compiler or find_compiler()
    if cc is None or not names:
        return None
    for name in names:
        try:
            proc = subprocess.run([cc, f"-print-file-name={name}"],
                                  capture_output=True, text=True, timeout=30)
        except (OSError, subprocess.SubprocessError):
            return None
        out = proc.stdout.strip()
        # an unknown library echoes back as the bare name
        if proc.returncode == 0 and out and out != name:
            path = Path(out)
            if path.exists():
                return str(path.resolve())
    return None


def sanitizer_env(profiles: tuple[str, ...] | None = None,
                  compiler: str | None = None) -> dict[str, str]:
    """Environment needed to *load* the active sanitized build into an
    uninstrumented interpreter (CPython is not rebuilt with the
    sanitizer; only the kernel ``.so`` is).

    - ``asan``: the runtime must be initialized before any other
      library, which for a dlopen'ed ``.so`` means ``LD_PRELOAD`` of
      ``libasan.so``; leak checking is disabled because CPython
      intentionally leaks interned objects at exit and would drown real
      reports.
    - ``ubsan``: nothing — ``libubsan`` is an ordinary ``DT_NEEDED``
      dependency of the instrumented library and resolves at dlopen.
    - ``tsan``: *no* environment makes this safe; the TSan runtime
      cannot interpose an already-running CPython (it crashes at
      preload).  Race checks run the instrumented library through a
      native driver instead (``tests/test_kernel_sanitize.py``).
    """
    profs = sanitize_profiles() if profiles is None else tuple(profiles)
    env: dict[str, str] = {}
    if "asan" in profs:
        runtime = sanitizer_runtime("asan", compiler)
        if runtime:
            prior = os.environ.get("LD_PRELOAD", "")
            env["LD_PRELOAD"] = (runtime if not prior
                                 else f"{runtime}:{prior}")
        env["ASAN_OPTIONS"] = "detect_leaks=0:abort_on_error=1"
    if "ubsan" in profs:
        env.setdefault("UBSAN_OPTIONS", "print_stacktrace=1")
    return env


def source_files(src_dir: Path | None = None) -> list[Path]:
    """The translation units and headers that define the native tier,
    sorted for a stable hash (``.c`` compiled, ``.h``/``.inc`` hashed)."""
    root = Path(src_dir) if src_dir is not None else _SRC_DIR
    return sorted(p for p in root.iterdir()
                  if p.suffix in (".c", ".h", ".inc"))


def find_compiler() -> str | None:
    """Discover a usable C compiler executable.

    Order: ``$CC``, the compiler CPython was built with (``sysconfig``),
    then ``cc``/``gcc``/``clang`` on PATH.  Returns an absolute path, or
    ``None`` when the host has no compiler (the pure tier then serves
    everything).
    """
    candidates: list[str] = []
    env_cc = os.environ.get("CC", "").split()
    if env_cc:
        candidates.append(env_cc[0])
    py_cc = (sysconfig.get_config_var("CC") or "").split()
    if py_cc:
        candidates.append(py_cc[0])
    candidates += ["cc", "gcc", "clang"]
    for cand in candidates:
        found = shutil.which(cand)
        if found:
            return found
    return None


def cache_root() -> Path:
    """Build-cache directory (see module docstring)."""
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME") or str(Path.home() / ".cache")
    return Path(xdg) / "repro" / "kernels"


def source_hash(sources: list[Path] | None = None,
                compiler: str | None = None,
                cflags: tuple[str, ...] = CFLAGS_OPENMP) -> str:
    """SHA-256 over source names+contents and the compile configuration.

    Any edit to a ``.c``/``.h``/``.inc`` file, a flag change, or a
    different compiler yields a new hash — and therefore a fresh build
    directory — which is what makes stale-cache reuse impossible.
    """
    h = hashlib.sha256()
    for path in sources if sources is not None else source_files():
        h.update(path.name.encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    h.update(" ".join(cflags).encode())
    h.update(b"\0")
    h.update((compiler or "").encode())
    return h.hexdigest()


def cached_library_path(sources: list[Path] | None = None,
                        cache_dir: Path | None = None,
                        compiler: str | None = None,
                        cflags: tuple[str, ...] = CFLAGS_OPENMP) -> Path:
    """Where the build for the current sources lives (existing or not)."""
    root = Path(cache_dir) if cache_dir is not None else cache_root()
    return root / source_hash(sources, compiler, cflags)[:16] / LIB_NAME


def cached_library_paths(sources: list[Path] | None = None,
                         cache_dir: Path | None = None,
                         compiler: str | None = None) -> list[Path]:
    """Candidate cache locations, one per flag set in preference order.

    A warm-cache probe must stat every candidate: a host whose toolchain
    lacks OpenMP caches under the serial-flag hash, and the ``auto`` tier
    should still find that build without ever invoking a compiler.
    Sanitizer profiles shift every candidate to its instrumented hash.
    """
    srcs = sources if sources is not None else source_files()
    return [cached_library_path(srcs, cache_dir, compiler, fl)
            for fl in flag_sets(compiler)]


def build_library(sources: list[Path] | None = None,
                  cache_dir: Path | None = None,
                  compiler: str | None = None) -> Path | None:
    """Compile (or reuse) the native kernel library; ``None`` on failure.

    The happy path on a warm cache is two ``stat`` calls — no compiler is
    even looked up unless a build is actually needed.
    """
    global last_error, last_failure
    srcs = sources if sources is not None else source_files()
    c_files = [p for p in srcs if p.suffix == ".c"]
    if not c_files:
        last_error = "no C sources found"
        return None
    cc = compiler or find_compiler()
    for flags in flag_sets(cc):
        out = cached_library_path(srcs, cache_dir, cc, flags)
        if out.exists():
            last_failure = None
            return out
    if cc is None:
        last_error = "no C compiler on PATH (set $CC or install cc/gcc/clang)"
        return None
    for flags in flag_sets(cc):
        out = _compile(cc, flags, c_files,
                       cached_library_path(srcs, cache_dir, cc, flags))
        if out is not None:
            last_error = None
            last_failure = None
            return out
    return None


def _compile(cc: str, cflags: tuple[str, ...], c_files: list[Path],
             out: Path) -> Path | None:
    """One compile attempt with one flag set; records ``last_error`` and
    ``last_failure`` and leaves no temp object (or empty hash directory)
    behind on the failure paths."""
    global last_error, last_failure
    made_dir = not out.parent.exists()
    out.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(out.parent))
    os.close(fd)
    cmd = [cc, *cflags, "-o", tmp,
           *[str(p) for p in c_files], "-lm"]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=120)
        if proc.returncode != 0:
            stderr = proc.stderr.strip()
            last_error = (f"{' '.join(cmd)} failed "
                          f"(rc={proc.returncode}): {stderr}")
            last_failure = BuildFailure(last_error, compiler=cc,
                                        stderr=stderr)
            return None
        os.replace(tmp, out)  # atomic: concurrent builders never collide
        tmp = None
        return out
    except (OSError, subprocess.SubprocessError) as exc:
        last_error = f"native build failed: {exc}"
        last_failure = BuildFailure(last_error, compiler=cc)
        return None
    finally:
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            if made_dir:
                try:  # fresh dir we created and left empty: remove it too
                    out.parent.rmdir()
                except OSError:
                    pass


#: Native check harnesses (not part of the kernel library build — the
#: ``checks/`` directory is outside :func:`source_files`'s scope).
CHECKS_DIR = _SRC_DIR.parent / "checks"


def race_driver_source() -> Path:
    """The TSan race harness for the OpenMP SpGEMM (see the file's
    comment block for why races need a native driver at all)."""
    return CHECKS_DIR / "race_spgemm.c"


def build_race_driver(kernel_lib: Path,
                      compiler: str | None = None) -> Path | None:
    """Compile the race driver against an already-built ``tsan``-profile
    kernel library; returns the executable path or ``None`` (with
    ``last_error`` recording why).

    The driver itself is instrumented (``-fsanitize=thread``) and links
    ``kernel_lib`` directly with an rpath, so running it needs no loader
    environment — only ``TSAN_OPTIONS`` to pick report behaviour.
    """
    global last_error
    cc = compiler or find_compiler()
    if cc is None:
        last_error = "no C compiler on PATH (set $CC or install cc/gcc/clang)"
        return None
    src = race_driver_source()
    if not src.exists():
        last_error = f"race driver source missing: {src}"
        return None
    out = Path(kernel_lib).parent / "race_spgemm"
    fd, tmp = tempfile.mkstemp(dir=str(out.parent))
    os.close(fd)
    cmd = [cc, "-O2", "-g", "-std=c99", "-fopenmp", "-fsanitize=thread",
           "-fno-omit-frame-pointer", "-o", tmp, str(src),
           str(kernel_lib), f"-Wl,-rpath,{Path(kernel_lib).parent}", "-lm"]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=120)
        if proc.returncode != 0:
            last_error = (f"{' '.join(cmd)} failed "
                          f"(rc={proc.returncode}): {proc.stderr.strip()}")
            return None
        os.chmod(tmp, 0o755)
        os.replace(tmp, out)
        tmp = None
        return out
    except (OSError, subprocess.SubprocessError) as exc:
        last_error = f"race driver build failed: {exc}"
        return None
    finally:
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass


def _main(argv: list[str] | None = None) -> int:
    """``python -m repro.kernels.native.build`` — build/inspect helper.

    ``--sanitize-env`` prints ``export K=V`` lines for the active
    ``$REPRO_KERNEL_SANITIZE`` profile (eval them before starting the
    interpreter that should load an instrumented build).  ``--build``
    forces a build now and prints the library path.  ``--cache-key``
    prints the 16-hex cache key prefix for the current configuration —
    CI uses it to prove sanitizer flags change the key.
    """
    import argparse
    import shlex

    ap = argparse.ArgumentParser(
        prog="python -m repro.kernels.native.build",
        description="native kernel build helper")
    ap.add_argument("--sanitize-env", action="store_true",
                    help="print `export K=V` loader lines for the active "
                         f"${SANITIZE_ENV} profile")
    ap.add_argument("--build", action="store_true",
                    help="build (or reuse) the library now; print its path")
    ap.add_argument("--cache-key", action="store_true",
                    help="print the cache key prefix for the current "
                         "sources/compiler/flags")
    args = ap.parse_args(argv)
    cc = find_compiler()
    if args.sanitize_env:
        for key, val in sanitizer_env(compiler=cc).items():
            print(f"export {key}={shlex.quote(val)}")
    if args.cache_key:
        print(source_hash(compiler=cc, cflags=flag_sets(cc)[0])[:16])
    if args.build:
        path = build_library()
        if path is None:
            print(f"build failed: {last_error}")
            return 1
        print(path)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(_main())
