"""Self-building JIT layer for the native kernel tier.

Stdlib only (``subprocess`` + ``sysconfig`` + ``shutil``): at first use the
``.c`` sources under ``src/`` are compiled into one shared library with
whatever C compiler the host offers, cached under a directory keyed by the
SHA-256 of the sources and compile command.  A changed source (or flag)
changes the key, so stale builds are never loaded — they are simply left
behind in the cache and rebuilt under the new key.  When no compiler
exists the build step returns ``None`` and the tier registry reports
``native`` unavailable; nothing in the tier-1 test suite ever triggers a
compile (the default tier is resolved without one).

The cache location is ``$REPRO_KERNEL_CACHE`` when set, else
``$XDG_CACHE_HOME/repro/kernels`` (``~/.cache/repro/kernels``).  Builds
are atomic (compile to a temp name, ``os.replace``), so concurrent ranks
of the procs backend can race on a cold cache safely: every rank either
finds the finished ``.so`` or produces an identical one.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import sysconfig
import tempfile
from pathlib import Path

#: Name of the produced shared library (per-hash directory disambiguates).
LIB_NAME = "librepro_kernels.so"

#: Portable optimization flags.  Deliberately conservative: no
#: -ffast-math / -funsafe-math-optimizations — the bitwise-parity contract
#: requires strict IEEE semantics in the exact source order.
CFLAGS = ("-O3", "-fPIC", "-shared", "-std=c99", "-fvisibility=hidden")

#: Preferred flag set: same as CFLAGS plus OpenMP, which the row-parallel
#: SpGEMM uses for its rank-local threads.  Builds try this first and fall
#: back to the serial CFLAGS when the toolchain lacks OpenMP support (old
#: clang without libomp, musl cc, ...); the kernels guard every pragma with
#: ``#ifdef _OPENMP`` and run identical per-row code serially, so which
#: variant got built never changes results — only whether
#: ``$REPRO_KERNEL_THREADS > 1`` can actually fan out.
CFLAGS_OPENMP = CFLAGS + ("-fopenmp",)

#: Flag sets in build preference order.
FLAG_SETS = (CFLAGS_OPENMP, CFLAGS)

_SRC_DIR = Path(__file__).resolve().parent / "src"

#: Last build failure (compiler stderr / exception text) for diagnostics;
#: ``None`` after a successful or not-yet-attempted build.
last_error: str | None = None


def source_files(src_dir: Path | None = None) -> list[Path]:
    """The translation units and headers that define the native tier,
    sorted for a stable hash (``.c`` compiled, ``.h``/``.inc`` hashed)."""
    root = Path(src_dir) if src_dir is not None else _SRC_DIR
    return sorted(p for p in root.iterdir()
                  if p.suffix in (".c", ".h", ".inc"))


def find_compiler() -> str | None:
    """Discover a usable C compiler executable.

    Order: ``$CC``, the compiler CPython was built with (``sysconfig``),
    then ``cc``/``gcc``/``clang`` on PATH.  Returns an absolute path, or
    ``None`` when the host has no compiler (the pure tier then serves
    everything).
    """
    candidates: list[str] = []
    env_cc = os.environ.get("CC", "").split()
    if env_cc:
        candidates.append(env_cc[0])
    py_cc = (sysconfig.get_config_var("CC") or "").split()
    if py_cc:
        candidates.append(py_cc[0])
    candidates += ["cc", "gcc", "clang"]
    for cand in candidates:
        found = shutil.which(cand)
        if found:
            return found
    return None


def cache_root() -> Path:
    """Build-cache directory (see module docstring)."""
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME") or str(Path.home() / ".cache")
    return Path(xdg) / "repro" / "kernels"


def source_hash(sources: list[Path] | None = None,
                compiler: str | None = None,
                cflags: tuple[str, ...] = CFLAGS_OPENMP) -> str:
    """SHA-256 over source names+contents and the compile configuration.

    Any edit to a ``.c``/``.h``/``.inc`` file, a flag change, or a
    different compiler yields a new hash — and therefore a fresh build
    directory — which is what makes stale-cache reuse impossible.
    """
    h = hashlib.sha256()
    for path in sources if sources is not None else source_files():
        h.update(path.name.encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    h.update(" ".join(cflags).encode())
    h.update(b"\0")
    h.update((compiler or "").encode())
    return h.hexdigest()


def cached_library_path(sources: list[Path] | None = None,
                        cache_dir: Path | None = None,
                        compiler: str | None = None,
                        cflags: tuple[str, ...] = CFLAGS_OPENMP) -> Path:
    """Where the build for the current sources lives (existing or not)."""
    root = Path(cache_dir) if cache_dir is not None else cache_root()
    return root / source_hash(sources, compiler, cflags)[:16] / LIB_NAME


def cached_library_paths(sources: list[Path] | None = None,
                         cache_dir: Path | None = None,
                         compiler: str | None = None) -> list[Path]:
    """Candidate cache locations, one per flag set in preference order.

    A warm-cache probe must stat every candidate: a host whose toolchain
    lacks OpenMP caches under the serial-flag hash, and the ``auto`` tier
    should still find that build without ever invoking a compiler.
    """
    srcs = sources if sources is not None else source_files()
    return [cached_library_path(srcs, cache_dir, compiler, fl)
            for fl in FLAG_SETS]


def build_library(sources: list[Path] | None = None,
                  cache_dir: Path | None = None,
                  compiler: str | None = None) -> Path | None:
    """Compile (or reuse) the native kernel library; ``None`` on failure.

    The happy path on a warm cache is two ``stat`` calls — no compiler is
    even looked up unless a build is actually needed.
    """
    global last_error
    srcs = sources if sources is not None else source_files()
    c_files = [p for p in srcs if p.suffix == ".c"]
    if not c_files:
        last_error = "no C sources found"
        return None
    cc = compiler or find_compiler()
    for flags in FLAG_SETS:
        out = cached_library_path(srcs, cache_dir, cc, flags)
        if out.exists():
            return out
    if cc is None:
        last_error = "no C compiler on PATH (set $CC or install cc/gcc/clang)"
        return None
    for flags in FLAG_SETS:
        out = _compile(cc, flags, c_files,
                       cached_library_path(srcs, cache_dir, cc, flags))
        if out is not None:
            last_error = None
            return out
    return None


def _compile(cc: str, cflags: tuple[str, ...], c_files: list[Path],
             out: Path) -> Path | None:
    """One compile attempt with one flag set; records ``last_error``."""
    global last_error
    out.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(out.parent))
    os.close(fd)
    cmd = [cc, *cflags, "-o", tmp,
           *[str(p) for p in c_files], "-lm"]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=120)
        if proc.returncode != 0:
            last_error = (f"{' '.join(cmd)} failed "
                          f"(rc={proc.returncode}): {proc.stderr.strip()}")
            return None
        os.replace(tmp, out)  # atomic: concurrent builders never collide
        tmp = None
        return out
    except (OSError, subprocess.SubprocessError) as exc:
        last_error = f"native build failed: {exc}"
        return None
    finally:
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass
