"""Native (compiled C) kernel tier: build, load, and ctypes bindings.

Do not import this module directly from solver/runtime code — go through
the dispatch layer (:mod:`repro.kernels`), which resolves the active tier
and falls back to ``pure`` when no compiler is available.  Lint rule
SPMD004 enforces that boundary.

The shared library is built lazily by :mod:`repro.kernels.native.build`
(source-hash-keyed cache, atomic, stdlib-only) and loaded once per
process with :mod:`ctypes` — SPMD rank processes each perform their own
lazy load of the cached ``.so`` on first dispatched call.

Every wrapper below produces bitwise-identical results to its pure
counterpart (see the parity pins in ``tests/test_kernel_tiers.py``):

- :func:`spgemm_csr`       ≡ ``repro.sparse.ops.csr_matmul_nosym``
- :func:`threshold_mask` / :func:`apply_threshold_mask`
                           ≡ ``repro.sparse.thresholding`` pair
- :func:`permuted_blocks`  ≡ ``repro.sparse.window.permuted_blocks``
- :func:`pivot_argmin_consume` ≡ ``int(np.argmin(key))`` + sentinel store
"""

from __future__ import annotations

import ctypes
import threading

import numpy as np

from ...sparse.ops import _MATMUL_CAP
from ...sparse.utils import raw_csr
from . import build

_lock = threading.Lock()
_lib: ctypes.CDLL | None = None
_load_attempted = False

# raw (void*-typed) binding of the pivot scan plus a one-slot cache of the
# last key array's data pointer: the colamd loop calls the scan thousands
# of times on the *same* array, and ctypes ndpointer validation would cost
# several times the scan itself.  The cached tuple holds a strong
# reference to the array, so the identity test can never alias a
# recycled object.
_pivot_raw = None
_pivot_cache: tuple | None = None


def _ptr(dtype):
    return np.ctypeslib.ndpointer(dtype=dtype, flags=("C_CONTIGUOUS",))


def _bind(lib: ctypes.CDLL) -> None:
    i64 = ctypes.c_int64
    for suffix, idt in (("_i32", np.int32), ("_i64", np.int64)):
        fn = getattr(lib, "rk_spgemm" + suffix)
        fn.restype = i64
        fn.argtypes = [i64, i64,
                       _ptr(idt), _ptr(idt), _ptr(np.float64),
                       _ptr(idt), _ptr(idt), _ptr(np.float64),
                       _ptr(idt), _ptr(idt), _ptr(np.float64),
                       _ptr(np.int64), _ptr(np.float64), _ptr(np.int64)]
        fn = getattr(lib, "rk_thresh_apply" + suffix)
        fn.restype = i64
        fn.argtypes = [i64, _ptr(idt), _ptr(idt), _ptr(np.float64),
                       _ptr(np.uint8)]
        fn = getattr(lib, "rk_window_count" + suffix)
        fn.restype = i64
        fn.argtypes = [i64, i64, i64, _ptr(idt), _ptr(idt),
                       _ptr(np.int64), _ptr(np.int64), _ptr(np.int64)]
        fn = getattr(lib, "rk_window_fill" + suffix)
        fn.restype = None
        fn.argtypes = [i64, i64, i64, _ptr(idt), _ptr(idt),
                       _ptr(np.float64), _ptr(np.int64), _ptr(np.int64),
                       _ptr(np.int64),
                       _ptr(idt), _ptr(idt), _ptr(np.float64),
                       _ptr(idt), _ptr(idt), _ptr(np.float64)]
    lib.rk_thresh_mask.restype = i64
    lib.rk_thresh_mask.argtypes = [
        _ptr(np.float64), i64, ctypes.c_double, _ptr(np.uint8),
        _ptr(np.float64), ctypes.POINTER(ctypes.c_double)]
    lib.rk_pivot_argmin_consume.restype = i64
    lib.rk_pivot_argmin_consume.argtypes = [_ptr(np.int64), i64, i64]
    global _pivot_raw
    proto = ctypes.CFUNCTYPE(i64, ctypes.c_void_p, i64, i64)
    _pivot_raw = proto(("rk_pivot_argmin_consume", lib))


def load() -> ctypes.CDLL | None:
    """Build (if needed) and load the kernel library; ``None`` if the host
    cannot produce one.  Memoized per process; thread-safe."""
    global _lib, _load_attempted
    if _lib is not None or _load_attempted:
        return _lib
    with _lock:
        if _lib is not None or _load_attempted:
            return _lib
        path = build.build_library()
        lib = None
        if path is not None:
            try:
                lib = ctypes.CDLL(str(path))
                _bind(lib)
            except OSError as exc:  # corrupt cache entry, missing symbol...
                build.last_error = f"failed to load {path}: {exc}"
                lib = None
        _lib = lib
        _load_attempted = True
    return _lib


def available() -> bool:
    return load() is not None


def cached_build_exists() -> bool:
    """True when the ``.so`` for the current sources is already on disk —
    a stat probe that never *runs* a compiler (the ``auto`` tier uses this
    so it cannot trigger a build).  The compiler is still *discovered*
    (PATH lookups only) because its path is part of the cache key."""
    try:
        return build.cached_library_path(
            compiler=build.find_compiler()).exists()
    except OSError:
        return False


def reset() -> None:
    """Forget the memoized load (tests re-probe after monkeypatching)."""
    global _lib, _load_attempted, _pivot_raw, _pivot_cache
    with _lock:
        _lib = None
        _load_attempted = False
        _pivot_raw = None
        _pivot_cache = None


def _idx_suffix(dtype) -> str:
    return "_i32" if np.dtype(dtype) == np.int32 else "_i64"


# ---------------------------------------------------------------------------
# kernel wrappers (same contracts as the pure tier)
# ---------------------------------------------------------------------------

def spgemm_csr(A, B, workspace=None):
    """``A @ B`` for canonical CSR operands — scipy-accumulation-order
    row-merge in C, with all intermediates served from ``workspace``
    (:class:`repro.sparse.spgemm.SpGEMMWorkspace`)."""
    from ...sparse.spgemm import SpGEMMWorkspace

    lib = load()
    m = A.shape[0]
    n = B.shape[1]
    if lib is None or A.nnz == 0 or B.nnz == 0:
        return A @ B
    bound = int(np.diff(B.indptr)[A.indices].sum())
    cap = min(bound, m * n)
    if cap > _MATMUL_CAP:
        return A @ B
    idx_dtype = np.promote_types(A.indices.dtype, B.indices.dtype)
    if np.dtype(idx_dtype) not in (np.dtype(np.int32), np.dtype(np.int64)):
        return A @ B
    dt = np.result_type(A.dtype, B.dtype)
    if np.dtype(dt) != np.float64:
        return A @ B
    Ap = A.indptr.astype(idx_dtype, copy=False)
    Aj = A.indices.astype(idx_dtype, copy=False)
    Bp = B.indptr.astype(idx_dtype, copy=False)
    Bj = B.indices.astype(idx_dtype, copy=False)
    Ax = A.data.astype(dt, copy=False)
    Bx = B.data.astype(dt, copy=False)
    if workspace is None:
        workspace = SpGEMMWorkspace()
    mark, sums, touched = workspace.matmat_buffers(n)
    Cp = np.empty(m + 1, dtype=idx_dtype)
    Cj = np.empty(cap, dtype=idx_dtype)
    Cx = np.empty(cap, dtype=np.float64)
    fn = getattr(lib, "rk_spgemm" + _idx_suffix(idx_dtype))
    nnz = int(fn(m, n, Ap, Aj, Ax, Bp, Bj, Bx, Cp, Cj, Cx,
                 mark, sums, touched))
    # sorted_indices=None matches the pure route (rows are emitted in
    # scipy's reverse-insertion order, not sorted)
    return raw_csr(Cx[:nnz], Cj[:nnz], Cp, (m, n), sorted_indices=None)


def threshold_mask(A, mu: float):
    """Fused single-pass mask + perturbation accounting (pure contract:
    ``repro.sparse.thresholding.threshold_mask``)."""
    lib = load()
    if mu <= 0.0 or A.nnz == 0 or lib is None \
            or A.data.dtype != np.float64:
        from ...sparse import thresholding
        return thresholding.threshold_mask(A, mu)
    data = A.data
    mask = np.empty(data.size, dtype=np.uint8)
    dropped = np.empty(data.size, dtype=np.float64)
    dmax = ctypes.c_double(0.0)
    count = int(lib.rk_thresh_mask(data, data.size, float(mu), mask,
                                   dropped, ctypes.byref(dmax)))
    d = dropped[:count]
    # the reduction runs through the same np.dot as the pure tier, on the
    # same values in the same order — bitwise-identical statistic
    norm_sq = float(np.dot(d, d))
    return mask.view(bool), count, norm_sq, float(dmax.value)


def apply_threshold_mask(A, mask):
    """Apply a threshold mask in place and prune zeros (pure contract:
    ``repro.sparse.thresholding.apply_threshold_mask``)."""
    lib = load()
    if mask is None or lib is None or A.data.dtype != np.float64 \
            or A.indices.dtype != A.indptr.dtype \
            or np.dtype(A.indices.dtype) not in (np.dtype(np.int32),
                                                 np.dtype(np.int64)):
        from ...sparse import thresholding
        return thresholding.apply_threshold_mask(A, mask)
    m8 = np.ascontiguousarray(mask, dtype=np.uint8)
    fn = getattr(lib, "rk_thresh_apply" + _idx_suffix(A.indices.dtype))
    n_outer = A.indptr.size - 1
    nnz = int(fn(n_outer, A.indptr, A.indices, A.data, m8))
    A.data = A.data[:nnz]
    A.indices = A.indices[:nnz]
    return A


def _window_split(lib, active, cols, ipos, k, rowcount, idx_dtype):
    """Split one permuted column window into top/bottom canonical CSR."""
    m = active.shape[0]
    ncols = cols.size
    in_dtype = active.indices.dtype
    suffix = _idx_suffix(in_dtype)
    count = getattr(lib, "rk_window_count" + suffix)
    fill = getattr(lib, "rk_window_fill" + suffix)
    total = int((active.indptr[cols + 1] - active.indptr[cols]).sum())
    top = int(count(m, k, ncols, active.indptr, active.indices, cols,
                    ipos, rowcount))
    bot = total - top
    # the C instantiation types outputs like the inputs; downcast (always
    # lossless: max(shape) bounds every index) to the canonical output
    # dtype afterwards when they differ
    Bp = np.empty(k + 1, dtype=in_dtype)
    Bj = np.empty(top, dtype=in_dtype)
    Bx = np.empty(top, dtype=np.float64)
    Cp = np.empty(m - k + 1, dtype=in_dtype)
    Cj = np.empty(bot, dtype=in_dtype)
    Cx = np.empty(bot, dtype=np.float64)
    fill(m, k, ncols, active.indptr, active.indices, active.data, cols,
         ipos, rowcount, Bp, Bj, Bx, Cp, Cj, Cx)
    return (raw_csr(Bx, Bj.astype(idx_dtype, copy=False),
                    Bp.astype(idx_dtype, copy=False), (k, ncols)),
            raw_csr(Cx, Cj.astype(idx_dtype, copy=False),
                    Cp.astype(idx_dtype, copy=False), (m - k, ncols)))


def permuted_blocks(active, col_perm, row_perm, k: int, rowcount=None):
    """Fused permute + 2x2 split (pure contract:
    ``repro.sparse.window.permuted_blocks``)."""
    lib = load()
    m, n = active.shape
    if lib is None or active.data.dtype != np.float64 \
            or active.indices.dtype != active.indptr.dtype \
            or np.dtype(active.indices.dtype) not in (np.dtype(np.int32),
                                                      np.dtype(np.int64)):
        from ...sparse import window
        return window.permuted_blocks(active, col_perm, row_perm, k)
    if not 0 < k <= min(m, n):
        raise ValueError(f"invalid split size k={k} for shape {active.shape}")
    q = np.ascontiguousarray(col_perm, dtype=np.int64)
    ipos = np.empty(m, dtype=np.int64)
    ipos[np.asarray(row_perm, dtype=np.int64)] = np.arange(m, dtype=np.int64)
    if rowcount is None or rowcount.size < m:
        rowcount = np.empty(max(m, 1), dtype=np.int64)
    idx_dtype = np.int32 if max(m, n) < 2**31 else np.int64

    A11, A21 = _window_split(lib, active, q[:k], ipos, k, rowcount,
                             idx_dtype)
    A12, A22 = _window_split(lib, active, q[k:], ipos, k, rowcount,
                             idx_dtype)
    A11d = np.zeros((k, k), dtype=np.float64)
    rows = np.repeat(np.arange(k, dtype=np.int64), np.diff(A11.indptr))
    A11d[rows, A11.indices] = A11.data
    return A11d, A12, A21, A22


#: above this many keys numpy's SIMD argmin beats the C scan — both routes
#: return the identical pivot, so crossing over is a pure perf guard
_PIVOT_SCAN_CAP = 1024


def pivot_argmin_consume(key: np.ndarray, sentinel: int) -> int:
    """First-minimum argmin over an int64 key array; the winner's slot is
    overwritten with ``sentinel`` (the colamd scan-route step)."""
    global _pivot_cache
    lib = load()
    if lib is None or key.dtype != np.int64 or key.size == 0 \
            or key.size > _PIVOT_SCAN_CAP or not key.flags.c_contiguous:
        v = int(np.argmin(key))
        key[v] = sentinel
        return v
    cache = _pivot_cache
    if cache is None or cache[0] is not key:
        _pivot_cache = cache = (key, key.ctypes.data)
    return int(_pivot_raw(cache[1], key.size, int(sentinel)))
