"""Native (compiled C) kernel tier: build, load, and ctypes bindings.

Do not import this module directly from solver/runtime code — go through
the dispatch layer (:mod:`repro.kernels`), which resolves the active tier
and falls back to ``pure`` when no compiler is available.  Lint rule
SPMD004 enforces that boundary.

The shared library is built lazily by :mod:`repro.kernels.native.build`
(source-hash-keyed cache, atomic, stdlib-only) and loaded once per
process with :mod:`ctypes` — SPMD rank processes each perform their own
lazy load of the cached ``.so`` on first dispatched call.

Every wrapper below produces bitwise-identical results to its pure
counterpart (see the parity pins in ``tests/test_kernel_tiers.py``):

- :func:`spgemm_csr`       ≡ ``repro.sparse.ops.csr_matmul_nosym``
  (``threads > 1`` selects the OpenMP row-parallel variant, which is
  per-row-deterministic — identical bits at any thread count)
- :func:`threshold_mask` / :func:`apply_threshold_mask`
                           ≡ ``repro.sparse.thresholding`` pair
- :func:`permuted_blocks`  ≡ ``repro.sparse.window.permuted_blocks``
- :func:`pivot_argmin_consume` ≡ ``int(np.argmin(key))`` + sentinel store
- :func:`csr_to_csc` / :func:`csc_to_csr` ≡ scipy ``tocsc()``/``tocsr()``
- :func:`gather_columns`   ≡ the general gather path of
  ``repro.sparse.ops.extract_columns``
- :func:`gram_csc`         ≡ ``repro.linalg.cholqr._cross_gram_kernel``
- :func:`schur_diff_csc`   ≡ ``(A - C).tocsc()`` + ``drop_explicit_zeros``
"""

from __future__ import annotations

import ctypes
import os
import threading

import numpy as np

from ...sparse.ops import _MATMUL_CAP
from ...sparse.utils import raw_csc, raw_csr
from . import build

_INT32_MAX = np.iinfo(np.int32).max

_lock = threading.Lock()
_lib: ctypes.CDLL | None = None
_load_attempted = False

# raw (void*-typed) binding of the pivot scan plus a one-slot cache of the
# last key array's data pointer: the colamd loop calls the scan thousands
# of times on the *same* array, and ctypes ndpointer validation would cost
# several times the scan itself.  The cached tuple holds a strong
# reference to the array, so the identity test can never alias a
# recycled object.
_pivot_raw = None
_pivot_cache: tuple | None = None


def _ptr(dtype):
    return np.ctypeslib.ndpointer(dtype=dtype, flags=("C_CONTIGUOUS",))


#: Declarative ctypes contract for every exported symbol — the Python
#: side of the ABI.  :func:`_bind` materializes it at load time, and the
#: ``repro.lint`` KERN rules parse it *statically* (``ast`` — keep every
#: value a literal) and cross-check it against the C prototypes in
#: ``src/kernels.h``.
#:
#: Shape: ``name -> (restype, argtypes)``.  ``restype`` is a scalar
#: token or ``None`` for ``void``.  Tokens: ``"i64"``/``"f64"`` scalars
#: (``int64_t``/``double``); ``"i32*"``/``"i64*"``/``"f64*"``/``"u8*"``
#: contiguous-ndarray pointers; ``"&f64"`` a ``ctypes.POINTER(c_double)``
#: scalar out-param; ``"IDX*"`` the index dtype of the kernel's two
#: instantiations (``name_i32``/``name_i64``).  Entries whose argtypes
#: mention ``IDX`` bind both suffixed symbols; the rest bind ``name``
#: as-is.
_ABI: dict[str, tuple[str | None, tuple[str, ...]]] = {
    "rk_openmp_enabled": ("i64", ()),
    "rk_thresh_mask": ("i64", ("f64*", "i64", "f64", "u8*", "f64*", "&f64")),
    "rk_pivot_argmin_consume": ("i64", ("i64*", "i64", "i64")),
    "rk_spgemm": ("i64", ("i64", "i64",
                          "IDX*", "IDX*", "f64*",
                          "IDX*", "IDX*", "f64*",
                          "IDX*", "IDX*", "f64*",
                          "i64*", "f64*", "i64*")),
    "rk_spgemm_par": ("i64", ("i64", "i64", "i64",
                              "IDX*", "IDX*", "f64*",
                              "IDX*", "IDX*", "f64*",
                              "IDX*", "IDX*", "f64*",
                              "i64*", "f64*", "i64*", "i64*")),
    "rk_thresh_apply": ("i64", ("i64", "IDX*", "IDX*", "f64*", "u8*")),
    "rk_window_count": ("i64", ("i64", "i64", "i64", "IDX*", "IDX*",
                                "i64*", "i64*", "i64*")),
    "rk_window_fill": (None, ("i64", "i64", "i64", "IDX*", "IDX*", "f64*",
                              "i64*", "i64*", "i64*",
                              "IDX*", "IDX*", "f64*",
                              "IDX*", "IDX*", "f64*")),
    "rk_window_fill_topdense": (None, ("i64", "i64", "i64",
                                       "IDX*", "IDX*", "f64*",
                                       "i64*", "i64*", "i64*", "f64*",
                                       "IDX*", "IDX*", "f64*")),
    "rk_csr_tocsc": (None, ("i64", "i64",
                            "IDX*", "IDX*", "f64*",
                            "IDX*", "IDX*", "f64*")),
    "rk_gather_cols": ("i64", ("i64", "IDX*", "IDX*", "f64*", "i64*",
                               "i64*", "IDX*", "f64*")),
    "rk_gram": (None, ("i64", "i64", "i64",
                       "IDX*", "IDX*", "f64*",
                       "IDX*", "IDX*", "f64*",
                       "f64*", "i64",
                       "i64*", "i64*", "f64*")),
    "rk_schur_diff": ("i64", ("i64", "i64",
                              "IDX*", "IDX*", "f64*",
                              "IDX*", "IDX*", "f64*",
                              "IDX*", "IDX*", "f64*",
                              "i64*", "f64*", "f64")),
}

_SCALAR_CTYPES = {"i64": ctypes.c_int64, "f64": ctypes.c_double}
_PTR_DTYPES = {"i32": np.int32, "i64": np.int64,
               "f64": np.float64, "u8": np.uint8}


def _ctype(token: str, idx_dtype):
    """One ``_ABI`` token to its ctypes argtype (``idx_dtype`` resolves
    ``IDX`` for the current instantiation)."""
    if token == "IDX*":
        return _ptr(idx_dtype)
    if token.startswith("&"):
        return ctypes.POINTER(_SCALAR_CTYPES[token[1:]])
    if token.endswith("*"):
        return _ptr(_PTR_DTYPES[token[:-1]])
    return _SCALAR_CTYPES[token]


def abi_is_generic(argtypes: tuple[str, ...]) -> bool:
    """Whether an ``_ABI`` entry describes an index-generic kernel
    (bound as ``name_i32``/``name_i64``) or a single plain symbol."""
    return any("IDX" in tok for tok in argtypes)


def _bind(lib: ctypes.CDLL) -> None:
    for name, (res, args) in _ABI.items():
        restype = None if res is None else _SCALAR_CTYPES[res]
        if abi_is_generic(args):
            variants = (("_i32", np.int32), ("_i64", np.int64))
        else:
            variants = (("", np.int64),)
        for suffix, idt in variants:
            fn = getattr(lib, name + suffix)
            fn.restype = restype
            fn.argtypes = [_ctype(tok, idt) for tok in args]
    global _pivot_raw
    i64 = ctypes.c_int64
    proto = ctypes.CFUNCTYPE(i64, ctypes.c_void_p, i64, i64)
    _pivot_raw = proto(("rk_pivot_argmin_consume", lib))


def _sanitize_load_error(path, profiles: tuple[str, ...]) -> str | None:
    """Why the active sanitizer profile forbids dlopening ``path`` into
    this interpreter, or ``None`` when loading is safe.

    TSan's runtime cannot interpose an already-running uninstrumented
    CPython (it crashes at initialization), and an ASan library whose
    runtime is not already loaded *aborts the process* inside dlopen —
    so both are refused up front instead of attempted.
    """
    if "tsan" in profiles:
        return (f"tsan build {path} cannot be loaded into CPython; run the "
                "race check through the native driver "
                "(tests/test_kernel_sanitize.py)")
    if "asan" in profiles:
        preload = os.environ.get("LD_PRELOAD", "")
        if "asan" not in preload:
            return (f"asan build {path} needs the ASan runtime loaded "
                    "first: eval \"$(python -m repro.kernels.native.build "
                    "--sanitize-env)\" before starting python")
    return None


def load() -> ctypes.CDLL | None:
    """Build (if needed) and load the kernel library; ``None`` if the host
    cannot produce one.  Memoized per process; thread-safe."""
    global _lib, _load_attempted
    if _lib is not None or _load_attempted:
        return _lib
    with _lock:
        if _lib is not None or _load_attempted:
            return _lib
        path = build.build_library()
        lib = None
        if path is not None:
            refusal = _sanitize_load_error(path, build.sanitize_profiles())
            if refusal is not None:
                build.last_error = refusal
            else:
                try:
                    lib = ctypes.CDLL(str(path))
                    _bind(lib)
                except OSError as exc:  # corrupt cache entry, missing symbol
                    build.last_error = f"failed to load {path}: {exc}"
                    lib = None
        _lib = lib
        _load_attempted = True
        if lib is not None:
            _cache_probe.clear()  # a fresh build makes stale "no" answers wrong
    return _lib


def available() -> bool:
    return load() is not None


def openmp_enabled() -> bool:
    """True when the loaded library was built with OpenMP — i.e. when
    ``$REPRO_KERNEL_THREADS > 1`` can actually fan the SpGEMM out."""
    lib = load()
    return lib is not None and bool(lib.rk_openmp_enabled())


# env-keyed memo of the warm-cache stat probe: the probe re-hashes every C
# source, and the ``auto`` tier consults it on every dispatched conversion.
# Invalidation: reset() (tests) and a successful in-process build (load()).
# A build finished by *another* process goes unseen until then — same
# "resolved once" behaviour solver configs already have.
_cache_probe: dict = {}


def cached_build_exists() -> bool:
    """True when the ``.so`` for the current sources is already on disk —
    a stat probe that never *runs* a compiler (the ``auto`` tier uses this
    so it cannot trigger a build).  The compiler is still *discovered*
    (PATH lookups only) because its path is part of the cache key.  Both
    flag-set variants (OpenMP and serial) count as warm."""
    key = (os.environ.get("REPRO_KERNEL_CACHE"),
           os.environ.get("XDG_CACHE_HOME"),
           os.environ.get("CC"),
           os.environ.get(build.SANITIZE_ENV))
    hit = _cache_probe.get(key)
    if hit is None:
        try:
            hit = any(p.exists() for p in build.cached_library_paths(
                compiler=build.find_compiler()))
        except OSError:
            hit = False
        _cache_probe[key] = hit
    return hit


def reset() -> None:
    """Forget the memoized load (tests re-probe after monkeypatching)."""
    global _lib, _load_attempted, _pivot_raw, _pivot_cache
    with _lock:
        _lib = None
        _load_attempted = False
        _pivot_raw = None
        _pivot_cache = None
        _cache_probe.clear()


def _idx_suffix(dtype) -> str:
    return "_i32" if np.dtype(dtype) == np.int32 else "_i64"


# ---------------------------------------------------------------------------
# kernel wrappers (same contracts as the pure tier)
# ---------------------------------------------------------------------------

def spgemm_csr(A, B, workspace=None, threads: int = 1):
    """``A @ B`` for canonical CSR operands — scipy-accumulation-order
    row-merge in C, with all intermediates served from ``workspace``
    (:class:`repro.sparse.spgemm.SpGEMMWorkspace`).

    ``threads > 1`` runs the OpenMP row-parallel variant when the library
    was built with OpenMP (else the single-pass serial kernel — same
    bits either way, since every row is computed by identical code)."""
    from ...sparse.spgemm import SpGEMMWorkspace

    lib = load()
    m = A.shape[0]
    n = B.shape[1]
    if lib is None or A.nnz == 0 or B.nnz == 0:
        return A @ B
    bound = int(np.diff(B.indptr)[A.indices].sum())
    cap = min(bound, m * n)
    if cap > _MATMUL_CAP:
        return A @ B
    idx_dtype = np.promote_types(A.indices.dtype, B.indices.dtype)
    if np.dtype(idx_dtype) not in (np.dtype(np.int32), np.dtype(np.int64)):
        return A @ B
    dt = np.result_type(A.dtype, B.dtype)
    if np.dtype(dt) != np.float64:
        return A @ B
    Ap = A.indptr.astype(idx_dtype, copy=False)
    Aj = A.indices.astype(idx_dtype, copy=False)
    Bp = B.indptr.astype(idx_dtype, copy=False)
    Bj = B.indices.astype(idx_dtype, copy=False)
    Ax = A.data.astype(dt, copy=False)
    Bx = B.data.astype(dt, copy=False)
    if workspace is None:
        workspace = SpGEMMWorkspace()
    nt = max(int(threads), 1)
    if nt > 1 and not bool(lib.rk_openmp_enabled()):
        nt = 1  # parallel kernel would run serial anyway; the single-pass
        # serial kernel is strictly cheaper (no symbolic prepass)
    Cp = np.empty(m + 1, dtype=idx_dtype)
    Cj = np.empty(cap, dtype=idx_dtype)
    Cx = np.empty(cap, dtype=np.float64)
    if nt > 1:
        mark, sums, touched = workspace.matmat_buffers(n, nt)
        rownnz = workspace.row_scratch(m)
        fn = getattr(lib, "rk_spgemm_par" + _idx_suffix(idx_dtype))
        nnz = int(fn(m, n, nt, Ap, Aj, Ax, Bp, Bj, Bx, Cp, Cj, Cx,
                     mark, sums, touched, rownnz))
    else:
        mark, sums, touched = workspace.matmat_buffers(n)
        fn = getattr(lib, "rk_spgemm" + _idx_suffix(idx_dtype))
        nnz = int(fn(m, n, Ap, Aj, Ax, Bp, Bj, Bx, Cp, Cj, Cx,
                     mark, sums, touched))
    # sorted_indices=None matches the pure route (rows are emitted in
    # scipy's reverse-insertion order, not sorted)
    return raw_csr(Cx[:nnz], Cj[:nnz], Cp, (m, n), sorted_indices=None)


def threshold_mask(A, mu: float):
    """Fused single-pass mask + perturbation accounting (pure contract:
    ``repro.sparse.thresholding.threshold_mask``)."""
    lib = load()
    if mu <= 0.0 or A.nnz == 0 or lib is None \
            or A.data.dtype != np.float64:
        from ...sparse import thresholding
        return thresholding.threshold_mask(A, mu)
    data = A.data
    mask = np.empty(data.size, dtype=np.uint8)
    dropped = np.empty(data.size, dtype=np.float64)
    dmax = ctypes.c_double(0.0)
    count = int(lib.rk_thresh_mask(data, data.size, float(mu), mask,
                                   dropped, ctypes.byref(dmax)))
    d = dropped[:count]
    # the reduction runs through the same np.dot as the pure tier, on the
    # same values in the same order — bitwise-identical statistic
    norm_sq = float(np.dot(d, d))
    return mask.view(bool), count, norm_sq, float(dmax.value)


def apply_threshold_mask(A, mask):
    """Apply a threshold mask in place and prune zeros (pure contract:
    ``repro.sparse.thresholding.apply_threshold_mask``)."""
    lib = load()
    if mask is None or lib is None or A.data.dtype != np.float64 \
            or A.indices.dtype != A.indptr.dtype \
            or np.dtype(A.indices.dtype) not in (np.dtype(np.int32),
                                                 np.dtype(np.int64)):
        from ...sparse import thresholding
        return thresholding.apply_threshold_mask(A, mask)
    m8 = np.ascontiguousarray(mask, dtype=np.uint8)
    fn = getattr(lib, "rk_thresh_apply" + _idx_suffix(A.indices.dtype))
    n_outer = A.indptr.size - 1
    nnz = int(fn(n_outer, A.indptr, A.indices, A.data, m8))
    A.data = A.data[:nnz]
    A.indices = A.indices[:nnz]
    return A


def _window_split(lib, active, cols, ipos, k, rowcount, idx_dtype):
    """Split one permuted column window into top/bottom canonical CSR."""
    m = active.shape[0]
    ncols = cols.size
    in_dtype = active.indices.dtype
    suffix = _idx_suffix(in_dtype)
    count = getattr(lib, "rk_window_count" + suffix)
    fill = getattr(lib, "rk_window_fill" + suffix)
    total = int((active.indptr[cols + 1] - active.indptr[cols]).sum())
    top = int(count(m, k, ncols, active.indptr, active.indices, cols,
                    ipos, rowcount))
    bot = total - top
    # the C instantiation types outputs like the inputs; downcast (always
    # lossless: max(shape) bounds every index) to the canonical output
    # dtype afterwards when they differ
    Bp = np.empty(k + 1, dtype=in_dtype)
    Bj = np.empty(top, dtype=in_dtype)
    Bx = np.empty(top, dtype=np.float64)
    Cp = np.empty(m - k + 1, dtype=in_dtype)
    Cj = np.empty(bot, dtype=in_dtype)
    Cx = np.empty(bot, dtype=np.float64)
    fill(m, k, ncols, active.indptr, active.indices, active.data, cols,
         ipos, rowcount, Bp, Bj, Bx, Cp, Cj, Cx)
    return (raw_csr(Bx, Bj.astype(idx_dtype, copy=False),
                    Bp.astype(idx_dtype, copy=False), (k, ncols)),
            raw_csr(Cx, Cj.astype(idx_dtype, copy=False),
                    Cp.astype(idx_dtype, copy=False), (m - k, ncols)))


def _window_split_topdense(lib, active, cols, ipos, k, rowcount, idx_dtype):
    """Split the pivot column window: top block straight to dense (it is
    inverted immediately — see rk_window_fill_topdense), bottom to CSR."""
    m = active.shape[0]
    ncols = cols.size
    in_dtype = active.indices.dtype
    suffix = _idx_suffix(in_dtype)
    count = getattr(lib, "rk_window_count" + suffix)
    fill = getattr(lib, "rk_window_fill_topdense" + suffix)
    total = int((active.indptr[cols + 1] - active.indptr[cols]).sum())
    top = int(count(m, k, ncols, active.indptr, active.indices, cols,
                    ipos, rowcount))
    bot = total - top
    D = np.empty((k, ncols), dtype=np.float64)
    Cp = np.empty(m - k + 1, dtype=in_dtype)
    Cj = np.empty(bot, dtype=in_dtype)
    Cx = np.empty(bot, dtype=np.float64)
    fill(m, k, ncols, active.indptr, active.indices, active.data, cols,
         ipos, rowcount, D, Cp, Cj, Cx)
    return D, raw_csr(Cx, Cj.astype(idx_dtype, copy=False),
                      Cp.astype(idx_dtype, copy=False), (m - k, ncols))


def permuted_blocks(active, col_perm, row_perm, k: int, rowcount=None):
    """Fused permute + 2x2 split (pure contract:
    ``repro.sparse.window.permuted_blocks``)."""
    lib = load()
    m, n = active.shape
    if lib is None or active.data.dtype != np.float64 \
            or active.indices.dtype != active.indptr.dtype \
            or np.dtype(active.indices.dtype) not in (np.dtype(np.int32),
                                                      np.dtype(np.int64)):
        from ...sparse import window
        return window.permuted_blocks(active, col_perm, row_perm, k)
    if not 0 < k <= min(m, n):
        raise ValueError(f"invalid split size k={k} for shape {active.shape}")
    q = np.ascontiguousarray(col_perm, dtype=np.int64)
    ipos = np.empty(m, dtype=np.int64)
    ipos[np.asarray(row_perm, dtype=np.int64)] = np.arange(m, dtype=np.int64)
    if rowcount is None or rowcount.size < m:
        rowcount = np.empty(max(m, 1), dtype=np.int64)
    idx_dtype = np.int32 if max(m, n) < 2**31 else np.int64

    A11d, A21 = _window_split_topdense(lib, active, q[:k], ipos, k,
                                       rowcount, idx_dtype)
    A12, A22 = _window_split(lib, active, q[k:], ipos, k, rowcount,
                             idx_dtype)
    return A11d, A12, A21, A22


# ---------------------------------------------------------------------------
# CSR <-> CSC conversion (scipy tocsc/tocsr contract)
# ---------------------------------------------------------------------------

def _convert_arrays(lib, A, n_major, n_minor):
    """Run the counting-sort conversion over ``A``'s raw arrays with
    ``n_major`` outer slots (rows for CSR input, columns for CSC input).
    Returns ``(Bp, Bi, Bx)`` or ``None`` when the input falls outside the
    kernel contract (the caller then runs scipy's conversion)."""
    if lib is None or A.data.dtype != np.float64:
        return None
    idx = A.indices.dtype
    if A.indptr.dtype != idx or \
            np.dtype(idx) not in (np.dtype(np.int32), np.dtype(np.int64)):
        return None
    nnz = int(A.indptr[-1])
    # scipy's matrix-API conversions normalize the output index dtype
    # through the validating constructor's contents check: int32 whenever
    # both dimensions and the nnz fit, int64 otherwise — independent of
    # the INPUT index dtype (a small-content int64 matrix comes back
    # int32).  Pick the same dtype up front and cast the inputs to it
    # (lossless by the very rule that chose it).
    out_idx = np.int32 if max(n_major, n_minor, nnz) <= _INT32_MAX \
        else np.int64
    Ap = A.indptr.astype(out_idx, copy=False)
    Aj = A.indices.astype(out_idx, copy=False)
    Bp = np.empty(n_minor + 1, dtype=out_idx)
    Bi = np.empty(nnz, dtype=out_idx)
    Bx = np.empty(nnz, dtype=np.float64)
    fn = getattr(lib, "rk_csr_tocsc" + _idx_suffix(out_idx))
    fn(n_major, n_minor, Ap, Aj, A.data, Bp, Bi, Bx)
    return Bp, Bi, Bx


def csr_to_csc(A):
    """CSR -> canonical CSC; scipy ``tocsc()`` contract (same counting
    sort, same entry order, same index dtypes)."""
    m, n = A.shape
    arrays = _convert_arrays(load(), A, m, n)
    if arrays is None:
        return A.tocsc()
    Bp, Bi, Bx = arrays
    return raw_csc(Bx, Bi, Bp, (m, n), sorted_indices=True)


def csc_to_csr(A):
    """CSC -> canonical CSR; scipy ``tocsr()`` contract.  Same kernel as
    :func:`csr_to_csc` with the roles of rows and columns transposed —
    exactly how scipy's ``csc_tocsr`` delegates to ``csr_tocsc``."""
    m, n = A.shape
    arrays = _convert_arrays(load(), A, n, m)
    if arrays is None:
        return A.tocsr()
    Bp, Bj, Bx = arrays
    return raw_csr(Bx, Bj, Bp, (m, n), sorted_indices=True)


# ---------------------------------------------------------------------------
# column gather (CSC sub-panel extraction)
# ---------------------------------------------------------------------------

def gather_columns(A, cols):
    """``A[:, cols]`` for canonical CSC ``A`` (pure contract: the general
    gather path of ``repro.sparse.ops.extract_columns``) — one memcpy
    pair per requested column instead of a materialized entry-position
    array, same entries in the same stored order."""
    lib = load()
    m = A.shape[0]
    if lib is None or A.data.dtype != np.float64 \
            or A.indices.dtype != A.indptr.dtype \
            or np.dtype(A.indices.dtype) not in (np.dtype(np.int32),
                                                 np.dtype(np.int64)):
        from ..pure import gather_columns as _pure_gather
        return _pure_gather(A, cols)
    cols64 = np.ascontiguousarray(cols, dtype=np.int64)
    counts = A.indptr[cols64 + 1] - A.indptr[cols64]
    nnz = int(counts.sum())
    Bp = np.empty(cols64.size + 1, dtype=np.int64)
    Bi = np.empty(nnz, dtype=A.indices.dtype)
    Bx = np.empty(nnz, dtype=np.float64)
    fn = getattr(lib, "rk_gather_cols" + _idx_suffix(A.indices.dtype))
    fn(cols64.size, A.indptr, A.indices, A.data, cols64, Bp, Bi, Bx)
    idx_dtype = np.int32 if m < _INT32_MAX + 1 else np.int64
    return raw_csc(Bx, Bi.astype(idx_dtype, copy=False),
                   Bp.astype(idx_dtype), (m, cols64.size))


# ---------------------------------------------------------------------------
# dense cross-Gram of CSC panels
# ---------------------------------------------------------------------------

def gram_csc(B1, B2, workspace=None):
    """Dense ``B1.T @ B2`` for canonical CSC panels (pure contract:
    ``repro.linalg.cholqr._cross_gram_kernel``), accumulating straight
    out of an internal counting-sort transpose of ``B2`` instead of the
    pure route's per-call ``tocsr`` + ``sort_indices`` + index upcasts."""
    from ...sparse.spgemm import SpGEMMWorkspace

    lib = load()
    m, c1 = B1.shape
    if lib is None or B2.shape[0] != m \
            or B1.data.dtype != np.float64 or B2.data.dtype != np.float64 \
            or B1.indices.dtype != B1.indptr.dtype \
            or B2.indices.dtype != B2.indptr.dtype \
            or B1.indices.dtype != B2.indices.dtype \
            or np.dtype(B1.indices.dtype) not in (np.dtype(np.int32),
                                                  np.dtype(np.int64)):
        from ...linalg.cholqr import _cross_gram_kernel
        return _cross_gram_kernel(B1, B2)
    c2 = B2.shape[1]
    nnz2 = int(B2.indptr[-1])
    if workspace is None:
        workspace = SpGEMMWorkspace()
    tp, tj, tx = workspace.gram_buffers(m, nnz2)
    C = np.empty((c1, c2), dtype=np.float64)
    # self-Gram: B1^T B1 is exactly symmetric (IEEE multiplication is
    # commutative and both triangles accumulate the same products in the
    # same row order), so the kernel fills only the upper triangle and
    # mirrors — half the multiply-add work, bit-identical output
    sym = B1 is B2 or (B1.data is B2.data and B1.indices is B2.indices
                       and B1.indptr is B2.indptr)
    fn = getattr(lib, "rk_gram" + _idx_suffix(B1.indices.dtype))
    fn(m, c1, c2, B1.indptr, B1.indices, B1.data,
       B2.indptr, B2.indices, B2.data, C, int(sym), tp, tj, tx)
    return C


# ---------------------------------------------------------------------------
# fused Schur difference
# ---------------------------------------------------------------------------

def schur_diff_csc(A, C, tol: float, workspace=None):
    """``(A - C).tocsc()`` with the zero/threshold drop fused in; ``A``
    and ``C`` are same-shape CSR (``C``'s rows may be unsorted — it is
    typically SpGEMM output).  Composition contract: scipy's
    ``csr_binop_csr`` subtraction, ``drop_explicit_zeros(..., tol)`` and
    ``tocsc()`` — one pass plus one counting sort instead of three
    materialized intermediates.  Returns ``None`` when the inputs fall
    outside the kernel contract (the caller runs the pure composition)."""
    from ...sparse.spgemm import SpGEMMWorkspace

    lib = load()
    m, n = A.shape
    if lib is None or A.data.dtype != np.float64 \
            or C.data.dtype != np.float64:
        return None
    for M in (A, C):
        if M.indices.dtype != M.indptr.dtype or \
                np.dtype(M.indices.dtype) not in (np.dtype(np.int32),
                                                  np.dtype(np.int64)):
            return None
    bound = int(A.indptr[-1]) + int(C.indptr[-1])
    if bound > _MATMUL_CAP:
        return None
    # scipy's binop computes at the common index dtype of the four input
    # index arrays, but the final ``tocsc()`` re-normalizes through the
    # validating constructor: int32 whenever both dimensions and the nnz
    # fit (``bound <= _MATMUL_CAP`` already guarantees nnz fits), int64
    # otherwise — independent of the binop intermediate's dtype.
    idx = np.promote_types(A.indices.dtype, C.indices.dtype)
    if np.dtype(idx) == np.dtype(np.int32) and max(bound, m) > _INT32_MAX:
        return None
    out_idx = np.dtype(np.int32) if max(m, n) <= _INT32_MAX \
        else np.dtype(np.int64)
    if workspace is None:
        workspace = SpGEMMWorkspace()
    mark, sums, _ = workspace.matmat_buffers(n)
    Dp = np.empty(m + 1, dtype=idx)
    Dj = np.empty(bound, dtype=idx)
    Dx = np.empty(bound, dtype=np.float64)
    fn = getattr(lib, "rk_schur_diff" + _idx_suffix(idx))
    nnz = int(fn(m, n,
                 A.indptr.astype(idx, copy=False),
                 A.indices.astype(idx, copy=False), A.data,
                 C.indptr.astype(idx, copy=False),
                 C.indices.astype(idx, copy=False), C.data,
                 Dp, Dj, Dx, mark, sums, float(tol)))
    if np.dtype(idx) != out_idx:
        Dp = Dp.astype(out_idx)
        Dj = Dj[:nnz].astype(out_idx)
    Sp = np.empty(n + 1, dtype=out_idx)
    Si = np.empty(nnz, dtype=out_idx)
    Sx = np.empty(nnz, dtype=np.float64)
    conv = getattr(lib, "rk_csr_tocsc" + _idx_suffix(out_idx))
    conv(m, n, Dp, Dj, Dx, Sp, Si, Sx)
    return raw_csc(Sx, Si, Sp, (m, n), sorted_indices=True)


#: above this many keys numpy's SIMD argmin beats the C scan — both routes
#: return the identical pivot, so crossing over is a pure perf guard
_PIVOT_SCAN_CAP = 1024


def pivot_argmin_consume(key: np.ndarray, sentinel: int) -> int:
    """First-minimum argmin over an int64 key array; the winner's slot is
    overwritten with ``sentinel`` (the colamd scan-route step)."""
    global _pivot_cache
    lib = load()
    if lib is None or key.dtype != np.int64 or key.size == 0 \
            or key.size > _PIVOT_SCAN_CAP or not key.flags.c_contiguous:
        v = int(np.argmin(key))
        key[v] = sentinel
        return v
    cache = _pivot_cache
    if cache is None or cache[0] is not key:
        _pivot_cache = cache = (key, key.ctypes.data)
    return int(_pivot_raw(cache[1], key.size, int(sentinel)))
