"""Kernel tier registry: ``pure`` (NumPy/SciPy) vs ``native`` (JIT C).

Public dispatch surface for the sparse hot-path kernels.  All call sites
go through this package — never through :mod:`repro.kernels.native`
directly (lint rule SPMD004) — so the pure fallback can never be
bypassed and the bitwise-parity contract stays enforceable in one place.

See :mod:`repro.kernels.tiers` for resolution semantics and
``docs/performance.md`` ("Kernel tiers") for the user-facing story.
"""

from .tiers import (
    THREADS_ENV,
    TIER_ENV,
    TIER_REQUESTS,
    TIERS,
    apply_threshold_mask,
    available_tiers,
    csc_to_csr,
    csr_to_csc,
    gather_columns,
    gram_csc,
    kernel_threads,
    native_available,
    permuted_blocks,
    pivot_argmin_consume,
    record_tier,
    reset,
    resolve_tier,
    schur_update_csc,
    spgemm_csr,
    threshold_mask,
    validate_request,
)

__all__ = [
    "TIERS",
    "TIER_REQUESTS",
    "TIER_ENV",
    "THREADS_ENV",
    "available_tiers",
    "native_available",
    "resolve_tier",
    "validate_request",
    "record_tier",
    "reset",
    "kernel_threads",
    "spgemm_csr",
    "threshold_mask",
    "apply_threshold_mask",
    "permuted_blocks",
    "pivot_argmin_consume",
    "csr_to_csc",
    "csc_to_csr",
    "gather_columns",
    "gram_csc",
    "schur_update_csc",
]
