"""Exception hierarchy for the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch a single base class.  The breakdown exceptions mirror the failure modes
discussed in Section III-A of the paper (rank deficiency introduced by
thresholding, loss of convergence, numerical breakdown of the factorization).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConvergenceError(ReproError):
    """An iterative method failed to reach the requested tolerance.

    Carries the partial state so callers can inspect how far the method got.
    """

    def __init__(self, message: str, *, iterations: int | None = None,
                 achieved: float | None = None, requested: float | None = None):
        super().__init__(message)
        self.iterations = iterations
        self.achieved = achieved
        self.requested = requested


class RankDeficiencyBreakdown(ReproError):
    """The pivot block :math:`\\bar{A}_{11}` became numerically singular.

    For ILUT_CRTP this is the failure mode of Section III-A: thresholding
    perturbed :math:`\\tilde{A}` enough that it no longer has rank at least
    ``K + 1`` (bound (20) violated).  For LU_CRTP it indicates the input's
    numerical rank was reached or machine-precision singular values were hit.
    """

    def __init__(self, message: str, *, iteration: int | None = None,
                 rank: int | None = None):
        super().__init__(message)
        self.iteration = iteration
        self.rank = rank


class ToleranceTooSmallError(ReproError):
    """Requested tolerance is below what an error indicator can resolve.

    Theorem 3 of Yu/Gu/Li (2018) shows the RandQB_EI indicator (4) fails in
    IEEE double precision for tolerances below ``2.1e-7``.
    """


class DistributionError(ReproError):
    """Invalid data-distribution request in the simulated parallel layer."""


class CommunicatorError(ReproError):
    """Misuse of the simulated communicator (mismatched collectives, bad rank)."""


class RankFailure(CommunicatorError):
    """A simulated rank died (injected crash) or a peer observed its death.

    ``rank`` names the failed rank, ``superstep`` its communication step at
    the time of death.  ``injected`` distinguishes the primary failure
    raised *on* the crashing rank from the secondary failures healthy ranks
    raise when they detect the dead participant (broken barrier, recv from
    a dead source).
    """

    def __init__(self, message: str, *, rank: int | None = None,
                 superstep: int | None = None, injected: bool = False):
        super().__init__(message)
        self.rank = rank
        self.superstep = superstep
        self.injected = injected


class CollectiveMismatchError(CommunicatorError):
    """Ranks issued *different* collectives at the same logical step.

    Raised by the ``REPRO_SANITIZE=1`` collective-fingerprint sanitizer
    (:mod:`repro.parallel.sanitize`) when the combining rank observes two
    ranks disagreeing on the ``(kernel, op, root, call-site)`` of the
    current collective — the failure the SPMD001 lint rule flags
    statically, caught at runtime instead of deadlocking or silently
    mixing payloads.  ``rank_a``/``site_a`` name one agreeing rank and
    its call site, ``rank_b``/``site_b`` the divergent rank.
    """

    def __init__(self, message: str, *, rank_a: int | None = None,
                 op_a: str | None = None, site_a: str | None = None,
                 rank_b: int | None = None, op_b: str | None = None,
                 site_b: str | None = None):
        super().__init__(message)
        self.rank_a = rank_a
        self.op_a = op_a
        self.site_a = site_a
        self.rank_b = rank_b
        self.op_b = op_b
        self.site_b = site_b


class CommTimeoutError(CommunicatorError):
    """A simulated ``recv`` (or retry sequence) exhausted its timeout.

    Carries the route ``(src, dst, tag)`` and the configured ``timeout`` so
    chaos tests can assert *which* message went missing.
    """

    def __init__(self, message: str, *, src: int | None = None,
                 dst: int | None = None, tag: int | None = None,
                 timeout: float | None = None, retries: int = 0):
        super().__init__(message)
        self.src = src
        self.dst = dst
        self.tag = tag
        self.timeout = timeout
        self.retries = retries


class CheckpointError(ReproError):
    """A solver checkpoint could not be written, read, or applied
    (e.g. resuming an SPMD run with a different process count)."""


class MatrixFormatError(ReproError):
    """Malformed external matrix data (e.g. Matrix Market parsing failures)."""


class KernelBuildError(ReproError):
    """An *explicitly requested* native kernel build failed to compile.

    Raised by :func:`repro.kernels.resolve_tier` when
    ``kernel_tier='native'`` was requested explicitly, a C compiler was
    found, and the compile still failed — silently falling back to
    ``pure`` there would hide a real toolchain or source problem behind
    a one-line warning.  ``auto`` requests and compiler-less hosts keep
    the silent (warned) fallback, so solves on plain hosts never gain a
    hard dependency on a C toolchain.

    ``compiler`` is the executable that was invoked and ``stderr`` the
    captured compiler diagnostics (also embedded in the message).
    """

    def __init__(self, message: str, *, compiler: str | None = None,
                 stderr: str | None = None):
        super().__init__(message)
        self.compiler = compiler
        self.stderr = stderr


class UnknownSolverError(ReproError, ValueError):
    """A method name did not resolve through the :mod:`repro.api` registry."""


class ServiceError(ReproError):
    """Base class for solve-service failures (:mod:`repro.service`)."""


class QueueFullError(ServiceError):
    """Backpressure: the service job queue is at capacity.

    Clients should retry with backoff; ``limit`` carries the configured
    queue bound so callers can log/shed load intelligently.
    """

    def __init__(self, message: str, *, limit: int | None = None):
        super().__init__(message)
        self.limit = limit


class ServiceOverloadError(QueueFullError):
    """Typed overload shed: the service refused a submission.

    Subclasses :class:`QueueFullError` so pre-existing backpressure
    handlers keep working; adds ``retry_after`` — the server's estimate
    (seconds) of when capacity will free up, surfaced through the TCP
    protocol so remote clients can back off intelligently.
    """

    def __init__(self, message: str, *, limit: int | None = None,
                 retry_after: float | None = None):
        super().__init__(message, limit=limit)
        self.retry_after = retry_after


class CircuitOpenError(ServiceError):
    """Per-solver circuit breaker is open: the method failed repeatedly
    and the service is fast-failing its requests while it cools down.

    ``method`` names the tripped solver, ``failures`` the consecutive
    failure count that opened the breaker, ``retry_after`` the seconds
    until the breaker next admits a half-open probe.
    """

    def __init__(self, message: str, *, method: str | None = None,
                 failures: int | None = None,
                 retry_after: float | None = None):
        super().__init__(message)
        self.method = method
        self.failures = failures
        self.retry_after = retry_after


class WorkerCrashError(ServiceError):
    """A solve worker died (or hung past its deadline grace) too many
    times while holding this job; the supervisor gave up requeueing it.

    ``job_id`` names the abandoned job, ``requeues`` how many recovery
    attempts were made before the job was failed.
    """

    def __init__(self, message: str, *, job_id: str | None = None,
                 requeues: int | None = None):
        super().__init__(message)
        self.job_id = job_id
        self.requeues = requeues


class CacheIntegrityError(ServiceError):
    """A spilled cache entry failed its checksum or could not be read.

    Never fatal to serving — the durable tier quarantines the entry and
    treats the lookup as a miss — but raised by maintenance APIs
    (``DiskCacheTier.verify``) so operators can audit the spill directory.
    ``entry`` names the offending file, ``reason`` the failure.
    """

    def __init__(self, message: str, *, entry: str | None = None,
                 reason: str | None = None):
        super().__init__(message)
        self.entry = entry
        self.reason = reason


class JobTimeoutError(ServiceError):
    """A solve job exceeded its per-job timeout and was evicted.

    Mirrors :class:`CommTimeoutError`'s shape for the serving layer:
    ``job_id`` names the evicted job, ``timeout`` the budget it blew, and
    ``resumable`` whether a mid-flight checkpoint was captured (resubmit
    with ``resume_from=job_id`` to continue from it).
    """

    def __init__(self, message: str, *, job_id: str | None = None,
                 timeout: float | None = None, resumable: bool = False):
        super().__init__(message)
        self.job_id = job_id
        self.timeout = timeout
        self.resumable = resumable


class JobFailedError(ServiceError):
    """A solve job raised; carries the underlying error text and type."""

    def __init__(self, message: str, *, job_id: str | None = None,
                 error_type: str | None = None):
        super().__init__(message)
        self.job_id = job_id
        self.error_type = error_type
