"""Iterative least-squares solvers (CGLS / preconditioned CGLS).

The natural consumer of an (I)LUT_CRTP factorization is an iterative
least-squares solve where the truncated factors act as a preconditioner
(:func:`repro.core.apply.as_preconditioner`).  To keep that story
self-contained the library ships its own Krylov solver: CGLS — conjugate
gradients on the normal equations ``A^T A x = A^T b`` implemented with the
numerically recommended two-vector recurrence (never forming ``A^T A``),
plus a split-preconditioned variant for an approximate right inverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class KrylovResult:
    """Outcome of an iterative solve.

    Attributes
    ----------
    x:
        The solution iterate.
    converged:
        Whether the residual target was met.
    iterations:
        Matvec pairs performed.
    residuals:
        Per-iteration relative residual norms ``||A^T r|| / ||A^T b||``.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residuals: list = field(default_factory=list)

    def to_json(self) -> dict:
        """Versioned summary (``repro.krylov/v1``) mirroring the result
        schema of :mod:`repro.results` — the solution vector itself is
        excluded (arrays travel separately, as with factorizations)."""
        return {
            "schema": "repro.krylov/v1",
            "converged": bool(self.converged),
            "iterations": int(self.iterations),
            "residuals": [float(r) for r in self.residuals],
        }


def cgls(A, b: np.ndarray, *, tol: float = 1e-8, max_iter: int | None = None,
         x0: np.ndarray | None = None, right_inverse=None) -> KrylovResult:
    """Solve ``min_x ||A x - b||_2`` by CGLS.

    Parameters
    ----------
    A:
        Sparse/dense matrix or any object with ``@`` and ``.T``
        (``LinearOperator`` works).
    b:
        Right-hand side, length ``m``.
    tol:
        Stop when ``||A^T r|| <= tol * ||A^T b||`` (the normal-equation
        residual — the standard CGLS criterion).
    max_iter:
        Cap on iterations (default ``2 * n``).
    x0:
        Warm start (default zero).
    right_inverse:
        Optional approximate right inverse ``M`` (callable or operator):
        solves the right-preconditioned system ``(A M) y = b``,
        ``x = M y``.  Pass ``repro.core.apply.as_preconditioner(result)``
        to accelerate with truncated LU factors.

    Notes
    -----
    With a rank-deficient ``A`` and ``x0 = 0``, CGLS converges to the
    minimum-norm least-squares solution.
    """
    m, n = A.shape

    if right_inverse is not None:
        Mop = right_inverse

        def apply_A(v):
            return A @ (Mop @ v)

        def apply_At(v):
            return np.asarray(Mop.T @ (A.T @ v)) if hasattr(Mop, "T") \
                else _apply_mt(Mop, A, v)
        inner_n = m
    else:
        def apply_A(v):
            return A @ v

        def apply_At(v):
            return A.T @ v
        inner_n = n

    max_iter = max_iter or 2 * inner_n
    b = np.asarray(b, dtype=np.float64)
    y = np.zeros(inner_n) if x0 is None or right_inverse is not None \
        else np.array(x0, dtype=np.float64, copy=True)
    r = b - np.asarray(apply_A(y))
    s = np.asarray(apply_At(r))
    p = s.copy()
    # convergence is relative to ||A^T b|| so that a warm start (already
    # small residual) registers as (nearly) converged instead of demanding
    # tol further reduction from wherever it begins
    norm_ref = float(np.linalg.norm(np.asarray(apply_At(b))))
    norm_s0 = norm_ref if norm_ref > 0 else 1.0
    gamma = float(s @ s)
    residuals: list[float] = []
    converged = norm_ref == 0.0 or np.sqrt(gamma) <= tol * norm_s0
    it = 0
    while not converged and it < max_iter:
        it += 1
        q = np.asarray(apply_A(p))
        qq = float(q @ q)
        if qq == 0.0:
            break
        alpha = gamma / qq
        y = y + alpha * p
        r = r - alpha * q
        s = np.asarray(apply_At(r))
        gamma_new = float(s @ s)
        rel = np.sqrt(gamma_new) / norm_s0
        residuals.append(rel)
        if rel <= tol:
            converged = True
            break
        p = s + (gamma_new / gamma) * p
        gamma = gamma_new

    x = np.asarray(Mop @ y) if right_inverse is not None else y
    return KrylovResult(x=x, converged=converged, iterations=it,
                        residuals=residuals)


def _apply_mt(Mop, A, v):
    """Fallback transpose application for operators without ``.T`` —
    approximate via the symmetric assumption (documented limitation)."""
    return np.asarray(Mop @ (A.T @ v))


def lowrank_accelerated_solve(A, b: np.ndarray, lu_result, *,
                              tol: float = 1e-8,
                              max_iter: int | None = None) -> KrylovResult:
    """Deflated solve: start CGLS from the truncated-LU pseudo-solution.

    One application of the rank-K pseudo-inverse removes the dominant
    K-dimensional part of the error; CGLS then only has to clean up the
    (small) remainder — typically a handful of iterations instead of
    hundreds on ill-conditioned inputs.
    """
    from .core.apply import pseudo_solve
    x0 = pseudo_solve(lu_result, np.asarray(b, dtype=np.float64))
    return cgls(A, b, tol=tol, max_iter=max_iter, x0=x0)
