"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
- ``info`` — list the built-in suite matrices (Table I analogues).
- ``solve`` — run one fixed-precision solver on a matrix and print the
  result summary (rank, iterations, time, factor nnz, indicator).
- ``compare`` — run all four methods with uniform termination and print a
  side-by-side table.
- ``scaling`` — modeled strong-scaling sweep for a matrix/method.
- ``trace`` — replay / extrapolate / diff captured ``repro.trace/v1``
  communication traces (capture one with ``solve --nprocs P --trace``).
- ``serve`` — run the async solve service on a TCP endpoint.

Matrices are addressed either by suite label (``M1``..``M6``, with
``--scale``) or by a Matrix Market file path.  Solver construction goes
through the :mod:`repro.api` registry, so every alias the library accepts
is valid for ``--method``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path



def _load_matrix(spec: str, scale: float):
    from .matrices import read_matrix_market, suite_matrix
    if Path(spec).exists():
        return read_matrix_market(spec)
    return suite_matrix(spec, scale=scale)


def _parse_machine(spec: str | None):
    """CLI machine spec: a preset name (``ib-cluster``) or a JSON dict
    of coefficient overrides (``'{"alpha": 5e-5}'``); ``None`` passes
    through (the default model)."""
    if spec is None:
        return None
    spec = spec.strip()
    if spec.startswith("{"):
        import json
        return json.loads(spec)
    return spec


def _config_from_args(args):
    from .api import SolverConfig
    return SolverConfig(k=args.k, tol=args.tol, power=args.power,
                        seed=args.seed,
                        estimated_iterations=args.estimated_iterations,
                        kernel_tier=getattr(args, "kernel_tier", "auto"),
                        machine=_parse_machine(
                            getattr(args, "machine", None)),
                        trace=bool(getattr(args, "trace", None)))


def _make_solver(method: str, args):
    from .api import make_solver
    from .exceptions import UnknownSolverError
    try:
        return make_solver(method, _config_from_args(args))
    except UnknownSolverError as exc:
        raise SystemExit(str(exc))


def _summary_row(name: str, res) -> list:
    d = res.to_json(include_history=False)
    return [name, d["rank"], d["iterations"], f"{d['elapsed']:.3f}",
            d["factor_nnz"], f"{d['relative_indicator']:.2e}",
            "yes" if d["converged"] else "NO"]


def _print_perf_report() -> None:
    from . import perf
    from .analysis.tables import render_table
    rep = perf.report()
    rows = []
    for name in sorted(rep["timers"]):
        t = rep["timers"][name]
        rows.append([name, t["calls"], f"{t['seconds']:.4f}",
                     f"{t['mean_ms']:.3f}",
                     f"{t['gflops_per_s']:.2f}" if "gflops_per_s" in t
                     else "-"])
    print(render_table(
        ["kernel", "calls", "seconds", "mean[ms]", "gflop/s"], rows,
        title="perf: per-kernel timings"))


def cmd_info(args) -> int:
    from .analysis.tables import render_table
    from .matrices import suite_entries, suite_matrix
    rows = []
    for e in suite_entries():
        A = suite_matrix(e.label, scale=args.scale)
        rows.append([e.label, e.paper_name, e.description,
                     f"{A.shape[0]}x{A.shape[1]}", A.nnz, e.default_k])
    print(render_table(
        ["label", "paper matrix", "class", "analogue shape", "nnz",
         "default k"], rows, title=f"Suite matrices (scale={args.scale})"))
    return 0


def cmd_solve(args) -> int:
    from .analysis.tables import render_table
    A = _load_matrix(args.matrix, args.scale)
    if args.perf:
        from . import perf
        perf.reset()
        perf.enable()
    run_info: dict = {}
    if args.nprocs > 1:
        from .parallel import MachineModel, run_spmd_solver
        machine = MachineModel.from_spec(_parse_machine(args.machine))
        res = run_spmd_solver(
            args.method, A, args.nprocs, k=args.k, tol=args.tol,
            power=args.power, seed=args.seed, backend=args.backend,
            kernel_tier=args.kernel_tier, run_info=run_info,
            machine=machine, trace=args.trace is not None)
    else:
        if args.trace is not None:
            raise SystemExit(
                "--trace captures SPMD communication; it needs --nprocs > 1")
        solver = _make_solver(args.method, args)
        res = solver.solve(A)
    print(render_table(
        ["method", "rank", "iters", "time[s]", "factor nnz", "indicator",
         "converged"],
        [_summary_row(args.method, res)],
        title=f"{args.matrix}: {A.shape[0]}x{A.shape[1]}, nnz={A.nnz}, "
              f"tau={args.tol:g}, k={args.k}"))
    if getattr(res, "kernel_tier", None):
        print(f"kernel tier: {res.kernel_tier}")
    if run_info:
        comm = run_info.get("comm") or {}
        print(f"SPMD: P={args.nprocs} backend={run_info.get('backend')} "
              f"algo={comm.get('algo')} "
              f"wall={run_info.get('wall_seconds', 0.0):.3f}s "
              f"modeled={run_info.get('elapsed', 0.0):.3e}s "
              f"comm={comm.get('bytes_sent', 0.0):.3e}B"
              f"/{comm.get('msgs', 0)}msg")
        if args.trace is not None and run_info.get("trace") is not None:
            run_info["trace"].dump(args.trace)
            print(f"trace written to {args.trace} "
                  f"({run_info['trace'].n_events} events, P={args.nprocs})")
    if args.perf:
        from . import perf
        perf.disable()
        _print_perf_report()
    if args.check:
        print(f"exact relative error: {res.error(A):.3e}")
    return 0 if res.converged else 1


def cmd_compare(args) -> int:
    from .analysis.tables import render_table
    from .api import make_solver
    A = _load_matrix(args.matrix, args.scale)
    config = _config_from_args(args)
    rows = []
    qb = make_solver("randqb", config).solve(A)
    rows.append(_summary_row(f"RandQB_EI p={args.power}", qb))
    ubv = make_solver("ubv", config).solve(A)
    rows.append(_summary_row("RandUBV", ubv))
    lu = make_solver("lu", config).solve(A)
    rows.append(_summary_row("LU_CRTP", lu))
    il = make_solver("ilut", config.replace(
        estimated_iterations=max(lu.iterations, 1))).solve(A)
    rows.append(_summary_row("ILUT_CRTP", il))
    print(render_table(
        ["method", "rank", "iters", "time[s]", "factor nnz", "indicator",
         "converged"],
        rows, title=f"{args.matrix}: {A.shape[0]}x{A.shape[1]}, "
                    f"nnz={A.nnz}, tau={args.tol:g}, k={args.k}"))
    ratio = lu.factor_nnz() / max(il.factor_nnz(), 1)
    print(f"\nratio_NNZ (LU/ILUT) = {ratio:.2f}, ILUT mu = "
          f"{il.threshold:.2e}")
    return 0


def cmd_scaling(args) -> int:
    from .parallel import (
        ScalingCurve,
        simulate_ilut_crtp,
        simulate_lu_crtp,
        simulate_randqb_ei,
        simulate_randubv,
        speedup_table,
        strong_scaling,
    )
    from .api import make_solver
    A = _load_matrix(args.matrix, args.scale)
    config = _config_from_args(args)
    ps = [int(p) for p in args.nprocs.split(",")]
    curves = []
    qb = make_solver("randqb", config).solve(A)
    curves.append(ScalingCurve.from_reports(
        f"RandQB_EI p={args.power}", strong_scaling(
            lambda p: simulate_randqb_ei(qb, A, p, k=args.k,
                                         power=args.power), ps)))
    ubv = make_solver("ubv", config).solve(A)
    curves.append(ScalingCurve.from_reports(
        "RandUBV", strong_scaling(
            lambda p: simulate_randubv(ubv, A, p, k=args.k), ps)))
    lu = make_solver("lu", config).solve(A)
    curves.append(ScalingCurve.from_reports(
        "LU_CRTP", strong_scaling(lambda p: simulate_lu_crtp(lu, p), ps)))
    il = make_solver("ilut", config.replace(
        estimated_iterations=max(lu.iterations, 1))).solve(A)
    curves.append(ScalingCurve.from_reports(
        "ILUT_CRTP", strong_scaling(lambda p: simulate_ilut_crtp(il, p),
                                    ps)))
    print(speedup_table(curves))
    for c in curves:
        print(f"{c.label:16s} saturates near np = {c.saturation_nprocs()}")
    return 0


def cmd_trace_replay(args) -> int:
    from .parallel import CommReport, replay_costs, replay_transport
    from .trace import CommTrace
    trace = CommTrace.load(args.trace)
    print(f"trace: {args.trace} [P={trace.nprocs} backend={trace.backend} "
          f"algo={trace.algo} events={trace.n_events}]")
    if args.transport:
        out = replay_transport(trace, backend=args.transport,
                               machine=_parse_machine(args.machine))
        print(CommReport.from_run(out).table())
        return 0
    rep = replay_costs(trace, nprocs=args.nprocs, algo=args.algo,
                       machine=_parse_machine(args.machine))
    print(rep.table())
    return 0


def cmd_trace_extrapolate(args) -> int:
    from .parallel import extrapolate
    from .trace import CommTrace
    trace = CommTrace.load(args.trace)
    ps = [int(p) for p in args.nprocs.split(",")]
    rep = extrapolate(trace, ps, algo=args.algo,
                      machine=_parse_machine(args.machine))
    print(f"trace: {args.trace} [P={trace.nprocs} backend={trace.backend} "
          f"algo={trace.algo}]")
    print(rep.table())
    return 0


def cmd_trace_diff(args) -> int:
    from .parallel import trace_diff
    from .trace import CommTrace
    a = CommTrace.load(args.trace_a)
    b = CommTrace.load(args.trace_b)
    res = trace_diff(a, b)
    if res["equal"]:
        print("traces are equivalent")
        return 0
    for line in res["differences"]:
        print(line)
    return 1


def cmd_serve(args) -> int:
    from .service import main_serve
    return main_serve(args.host, args.port, workers=args.workers,
                      queue_limit=args.queue_limit,
                      cache_capacity=args.cache_size,
                      default_timeout=args.job_timeout,
                      cache_dir=args.cache_dir,
                      max_requeues=args.max_requeues,
                      breaker_threshold=args.breaker_threshold,
                      breaker_cooldown=args.breaker_cooldown)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Fixed-precision low-rank approximation of sparse "
                    "matrices (RandQB_EI / LU_CRTP / ILUT_CRTP)")
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp):
        sp.add_argument("matrix",
                        help="suite label (M1..M6) or Matrix Market file")
        sp.add_argument("--scale", type=float, default=1.0,
                        help="suite-matrix size multiplier")
        sp.add_argument("-k", type=int, default=32, help="block size")
        sp.add_argument("--tol", type=float, default=1e-2,
                        help="relative tolerance tau")
        sp.add_argument("--power", type=int, default=1,
                        help="RandQB_EI power parameter p")
        sp.add_argument("--seed", type=int, default=0)
        sp.add_argument("--estimated-iterations", type=int, default=10,
                        help="ILUT heuristic (24) iteration estimate u")
        sp.add_argument("--kernel-tier", default="auto",
                        choices=("auto", "pure", "native"),
                        help="hot-path kernel tier: pure (NumPy/SciPy), "
                             "native (JIT-built C, bitwise-identical) or "
                             "auto (native iff already built)")
        sp.add_argument("--machine", default=None, metavar="SPEC",
                        help="simulated machine for SPMD runs: a preset "
                             "name (ib-cluster, ethernet-cluster, ...) or "
                             "a JSON coefficient dict like "
                             "'{\"alpha\": 5e-5, \"comm_algo\": \"tree\"}'")

    pi = sub.add_parser("info", help="list suite matrices")
    pi.add_argument("--scale", type=float, default=1.0)
    pi.set_defaults(func=cmd_info)

    ps_ = sub.add_parser("solve", help="run one solver")
    common(ps_)
    ps_.add_argument("--method", default="ilut",
                     help="randqb | ubv | lu | ilut")
    ps_.add_argument("--check", action="store_true",
                     help="also compute the exact (dense) error")
    ps_.add_argument("--perf", action="store_true",
                     help="record and print per-kernel perf timings")
    ps_.add_argument("--nprocs", type=int, default=1,
                     help="run the SPMD route on this many ranks (>1)")
    ps_.add_argument("--backend", default="threads",
                     choices=("threads", "procs"),
                     help="SPMD backend: threads (simulated, in-process) "
                          "or procs (one OS process per rank)")
    ps_.add_argument("--trace", default=None, metavar="PATH",
                     help="capture a repro.trace/v1 communication trace "
                          "of the SPMD run and write it to PATH "
                          "(requires --nprocs > 1)")
    ps_.set_defaults(func=cmd_solve)

    pc = sub.add_parser("compare", help="run all four methods")
    common(pc)
    pc.set_defaults(func=cmd_compare)

    psc = sub.add_parser("scaling", help="modeled strong-scaling sweep")
    common(psc)
    psc.add_argument("--nprocs", default="1,4,16,64,256,1024",
                     help="comma-separated process counts")
    psc.set_defaults(func=cmd_scaling)

    pt = sub.add_parser(
        "trace", help="replay / extrapolate / diff captured comm traces")
    tsub = pt.add_subparsers(dest="trace_command", required=True)

    def trace_common(sp):
        sp.add_argument("--algo", default=None,
                        choices=("flat", "tree", "ring"),
                        help="model a different collective algorithm "
                             "(default: the trace's recorded one)")
        sp.add_argument("--machine", default=None, metavar="SPEC",
                        help="cost model for the replay: preset name or "
                             "JSON coefficient dict (default: the "
                             "trace's captured machine)")

    tr = tsub.add_parser(
        "replay", help="model a trace's comm volume/time at any scale")
    tr.add_argument("trace", help="path to a repro.trace/v1 JSON file")
    tr.add_argument("--nprocs", type=int, default=None,
                    help="target process count (default: the recorded one)")
    trace_common(tr)
    tr.add_argument("--transport", default=None,
                    choices=("threads", "procs"),
                    help="instead of modeling, re-drive the trace against "
                         "a real backend at the recorded P and measure it")
    tr.set_defaults(func=cmd_trace_replay)

    te = tsub.add_parser(
        "extrapolate",
        help="Fig.4-style strong-scaling forecast from one trace")
    te.add_argument("trace", help="path to a repro.trace/v1 JSON file")
    te.add_argument("--nprocs", default="1,4,16,64,256,1024,4096",
                    help="comma-separated target process counts")
    trace_common(te)
    te.set_defaults(func=cmd_trace_extrapolate)

    td = tsub.add_parser(
        "diff", help="structurally compare two traces (exit 1 on drift)")
    td.add_argument("trace_a")
    td.add_argument("trace_b")
    td.set_defaults(func=cmd_trace_diff)

    pv = sub.add_parser("serve", help="run the async solve service (TCP, "
                                      "line-delimited JSON protocol)")
    pv.add_argument("--host", default="127.0.0.1")
    pv.add_argument("--port", type=int, default=7321)
    pv.add_argument("--workers", type=int, default=2,
                    help="concurrent solve workers")
    pv.add_argument("--queue-limit", type=int, default=64,
                    help="queue capacity before backpressure rejections")
    pv.add_argument("--cache-size", type=int, default=64,
                    help="factorization cache capacity (distinct keys)")
    pv.add_argument("--job-timeout", type=float, default=None,
                    help="default per-job timeout in seconds")
    pv.add_argument("--cache-dir", default=None,
                    help="directory for the durable cache tier (disk "
                         "spill surviving restarts); default memory-only")
    pv.add_argument("--max-requeues", type=int, default=2,
                    help="times one job survives a worker crash before "
                         "it fails with WorkerCrashError")
    pv.add_argument("--breaker-threshold", type=int, default=5,
                    help="consecutive failures per method that open its "
                         "circuit breaker")
    pv.add_argument("--breaker-cooldown", type=float, default=30.0,
                    help="seconds before an open breaker admits probes")
    pv.set_defaults(func=cmd_serve)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # output piped into a pager/head that closed early — normal use
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
