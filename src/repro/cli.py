"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
- ``info`` — list the built-in suite matrices (Table I analogues).
- ``solve`` — run one fixed-precision solver on a matrix and print the
  result summary (rank, iterations, time, factor nnz, indicator).
- ``compare`` — run all four methods with uniform termination and print a
  side-by-side table.
- ``scaling`` — modeled strong-scaling sweep for a matrix/method.

Matrices are addressed either by suite label (``M1``..``M6``, with
``--scale``) or by a Matrix Market file path.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np


def _load_matrix(spec: str, scale: float):
    from .matrices import read_matrix_market, suite_matrix
    if Path(spec).exists():
        return read_matrix_market(spec)
    return suite_matrix(spec, scale=scale)


def _make_solver(method: str, args):
    from .core import ILUT_CRTP, LU_CRTP, RandQB_EI, RandUBV
    method = method.lower()
    if method in ("randqb", "randqb_ei", "qb"):
        return RandQB_EI(k=args.k, tol=args.tol, power=args.power,
                         seed=args.seed)
    if method in ("ubv", "randubv"):
        return RandUBV(k=args.k, tol=args.tol, seed=args.seed)
    if method in ("lu", "lu_crtp"):
        return LU_CRTP(k=args.k, tol=args.tol)
    if method in ("ilut", "ilut_crtp"):
        return ILUT_CRTP(k=args.k, tol=args.tol,
                         estimated_iterations=args.estimated_iterations)
    raise SystemExit(f"unknown method {method!r} "
                     "(choose randqb | ubv | lu | ilut)")


def _summary_row(name: str, res) -> list:
    return [name, res.rank, res.iterations, f"{res.elapsed:.3f}",
            res.factor_nnz(), f"{res.relative_indicator():.2e}",
            "yes" if res.converged else "NO"]


def _print_perf_report() -> None:
    from . import perf
    from .analysis.tables import render_table
    rep = perf.report()
    rows = []
    for name in sorted(rep["timers"]):
        t = rep["timers"][name]
        rows.append([name, t["calls"], f"{t['seconds']:.4f}",
                     f"{t['mean_ms']:.3f}",
                     f"{t['gflops_per_s']:.2f}" if "gflops_per_s" in t
                     else "-"])
    print(render_table(
        ["kernel", "calls", "seconds", "mean[ms]", "gflop/s"], rows,
        title="perf: per-kernel timings"))


def cmd_info(args) -> int:
    from .analysis.tables import render_table
    from .matrices import suite_entries, suite_matrix
    rows = []
    for e in suite_entries():
        A = suite_matrix(e.label, scale=args.scale)
        rows.append([e.label, e.paper_name, e.description,
                     f"{A.shape[0]}x{A.shape[1]}", A.nnz, e.default_k])
    print(render_table(
        ["label", "paper matrix", "class", "analogue shape", "nnz",
         "default k"], rows, title=f"Suite matrices (scale={args.scale})"))
    return 0


def cmd_solve(args) -> int:
    from .analysis.tables import render_table
    A = _load_matrix(args.matrix, args.scale)
    solver = _make_solver(args.method, args)
    if args.perf:
        from . import perf
        perf.reset()
        perf.enable()
    res = solver.solve(A)
    print(render_table(
        ["method", "rank", "iters", "time[s]", "factor nnz", "indicator",
         "converged"],
        [_summary_row(args.method, res)],
        title=f"{args.matrix}: {A.shape[0]}x{A.shape[1]}, nnz={A.nnz}, "
              f"tau={args.tol:g}, k={args.k}"))
    if args.perf:
        from . import perf
        perf.disable()
        _print_perf_report()
    if args.check:
        print(f"exact relative error: {res.error(A):.3e}")
    return 0 if res.converged else 1


def cmd_compare(args) -> int:
    from .analysis.tables import render_table
    from .core import ILUT_CRTP, LU_CRTP, RandQB_EI, RandUBV
    A = _load_matrix(args.matrix, args.scale)
    rows = []
    qb = RandQB_EI(k=args.k, tol=args.tol, power=args.power,
                   seed=args.seed).solve(A)
    rows.append(_summary_row(f"RandQB_EI p={args.power}", qb))
    ubv = RandUBV(k=args.k, tol=args.tol, seed=args.seed).solve(A)
    rows.append(_summary_row("RandUBV", ubv))
    lu = LU_CRTP(k=args.k, tol=args.tol).solve(A)
    rows.append(_summary_row("LU_CRTP", lu))
    il = ILUT_CRTP(k=args.k, tol=args.tol,
                   estimated_iterations=max(lu.iterations, 1)).solve(A)
    rows.append(_summary_row("ILUT_CRTP", il))
    print(render_table(
        ["method", "rank", "iters", "time[s]", "factor nnz", "indicator",
         "converged"],
        rows, title=f"{args.matrix}: {A.shape[0]}x{A.shape[1]}, "
                    f"nnz={A.nnz}, tau={args.tol:g}, k={args.k}"))
    ratio = lu.factor_nnz() / max(il.factor_nnz(), 1)
    print(f"\nratio_NNZ (LU/ILUT) = {ratio:.2f}, ILUT mu = "
          f"{il.threshold:.2e}")
    return 0


def cmd_scaling(args) -> int:
    from .parallel import (
        ScalingCurve,
        simulate_ilut_crtp,
        simulate_lu_crtp,
        simulate_randqb_ei,
        simulate_randubv,
        speedup_table,
        strong_scaling,
    )
    from .core import ILUT_CRTP, LU_CRTP, RandQB_EI, RandUBV
    A = _load_matrix(args.matrix, args.scale)
    ps = [int(p) for p in args.nprocs.split(",")]
    curves = []
    qb = RandQB_EI(k=args.k, tol=args.tol, power=args.power,
                   seed=args.seed).solve(A)
    curves.append(ScalingCurve.from_reports(
        f"RandQB_EI p={args.power}", strong_scaling(
            lambda p: simulate_randqb_ei(qb, A, p, k=args.k,
                                         power=args.power), ps)))
    ubv = RandUBV(k=args.k, tol=args.tol, seed=args.seed).solve(A)
    curves.append(ScalingCurve.from_reports(
        "RandUBV", strong_scaling(
            lambda p: simulate_randubv(ubv, A, p, k=args.k), ps)))
    lu = LU_CRTP(k=args.k, tol=args.tol).solve(A)
    curves.append(ScalingCurve.from_reports(
        "LU_CRTP", strong_scaling(lambda p: simulate_lu_crtp(lu, p), ps)))
    il = ILUT_CRTP(k=args.k, tol=args.tol,
                   estimated_iterations=max(lu.iterations, 1)).solve(A)
    curves.append(ScalingCurve.from_reports(
        "ILUT_CRTP", strong_scaling(lambda p: simulate_ilut_crtp(il, p),
                                    ps)))
    print(speedup_table(curves))
    for c in curves:
        print(f"{c.label:16s} saturates near np = {c.saturation_nprocs()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Fixed-precision low-rank approximation of sparse "
                    "matrices (RandQB_EI / LU_CRTP / ILUT_CRTP)")
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp):
        sp.add_argument("matrix",
                        help="suite label (M1..M6) or Matrix Market file")
        sp.add_argument("--scale", type=float, default=1.0,
                        help="suite-matrix size multiplier")
        sp.add_argument("-k", type=int, default=32, help="block size")
        sp.add_argument("--tol", type=float, default=1e-2,
                        help="relative tolerance tau")
        sp.add_argument("--power", type=int, default=1,
                        help="RandQB_EI power parameter p")
        sp.add_argument("--seed", type=int, default=0)
        sp.add_argument("--estimated-iterations", type=int, default=10,
                        help="ILUT heuristic (24) iteration estimate u")

    pi = sub.add_parser("info", help="list suite matrices")
    pi.add_argument("--scale", type=float, default=1.0)
    pi.set_defaults(func=cmd_info)

    ps_ = sub.add_parser("solve", help="run one solver")
    common(ps_)
    ps_.add_argument("--method", default="ilut",
                     help="randqb | ubv | lu | ilut")
    ps_.add_argument("--check", action="store_true",
                     help="also compute the exact (dense) error")
    ps_.add_argument("--perf", action="store_true",
                     help="record and print per-kernel perf timings")
    ps_.set_defaults(func=cmd_solve)

    pc = sub.add_parser("compare", help="run all four methods")
    common(pc)
    pc.set_defaults(func=cmd_compare)

    psc = sub.add_parser("scaling", help="modeled strong-scaling sweep")
    common(psc)
    psc.add_argument("--nprocs", default="1,4,16,64,256,1024",
                     help="comma-separated process counts")
    psc.set_defaults(func=cmd_scaling)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # output piped into a pager/head that closed early — normal use
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
