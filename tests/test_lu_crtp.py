"""Tests for repro.core.lu_crtp (Algorithm 2)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import LU_CRTP, lu_crtp
from repro.exceptions import ConvergenceError


def test_converges_and_indicator_is_exact(small_sparse):
    res = lu_crtp(small_sparse, k=8, tol=1e-2)
    assert res.converged
    # indicator (9) == ||P_r A P_c - L U||_F exactly
    assert res.error(small_sparse) == pytest.approx(
        res.relative_indicator(), rel=1e-8)


def test_factors_shapes_and_structure(small_sparse):
    res = lu_crtp(small_sparse, k=8, tol=1e-2)
    K = res.rank
    assert res.L.shape == (60, K)
    assert res.U.shape == (K, 60)
    Ld = res.L.toarray()
    # unit diagonal staircase: L[j, j] == 1 on each block's identity part
    assert np.allclose(np.diag(Ld[:K, :K]), 1.0)
    # L is lower "block-trapezoidal": zero above each block's diagonal
    assert np.allclose(np.triu(Ld[:K, :K], k=1), 0.0)


def test_u_is_block_upper(small_sparse):
    """U has the block staircase of line 11: block i occupies rows
    i*k..(i+1)*k and columns i*k..n — everything left of the block diagonal
    is zero (block-level, not elementwise)."""
    k = 8
    res = lu_crtp(small_sparse, k=k, tol=1e-2)
    Ud = res.U.toarray()
    for i in range(res.rank // k):
        block_rows = Ud[i * k:(i + 1) * k, :i * k]
        assert np.allclose(block_rows, 0.0), f"block {i} leaks left"


def test_permutations_are_permutations(small_sparse):
    res = lu_crtp(small_sparse, k=8, tol=1e-2)
    assert sorted(res.row_perm.tolist()) == list(range(60))
    assert sorted(res.col_perm.tolist()) == list(range(60))


def test_permutation_matrices(small_sparse):
    res = lu_crtp(small_sparse, k=8, tol=1e-2)
    Pr, Pc = res.permutation_matrices()
    Ad = small_sparse.toarray()
    np.testing.assert_allclose((Pr @ Ad @ Pc),
                               Ad[np.ix_(res.row_perm, res.col_perm)])


def test_exact_rank_recovery(rank_deficient):
    """On an exactly rank-12 matrix, LU_CRTP stops at rank <= 16 (one block
    over) with tiny error."""
    res = lu_crtp(rank_deficient, k=4, tol=1e-10)
    assert res.converged
    assert res.rank <= 16
    assert res.error(rank_deficient) < 1e-10


def test_indicator_monotone_decreasing(small_sparse):
    res = lu_crtp(small_sparse, k=4, tol=1e-2)
    ind = res.history.indicators
    assert all(a >= b - 1e-12 for a, b in zip(ind, ind[1:]))


def test_colamd_off(small_sparse):
    res = lu_crtp(small_sparse, k=8, tol=1e-2, use_colamd=False)
    assert res.converged
    assert res.error(small_sparse) == pytest.approx(
        res.relative_indicator(), rel=1e-8)


def test_colamd_every_iteration(small_sparse):
    res = lu_crtp(small_sparse, k=8, tol=1e-2, colamd_every_iteration=True)
    assert res.converged
    assert res.error(small_sparse) == pytest.approx(
        res.relative_indicator(), rel=1e-8)


@pytest.mark.parametrize("tree", ["binary", "flat"])
def test_tree_shapes(small_sparse, tree):
    res = lu_crtp(small_sparse, k=8, tol=1e-2, tree=tree)
    assert res.converged


def test_orthogonal_l_formula(small_sparse):
    res = lu_crtp(small_sparse, k=8, tol=1e-2, l_formula="orthogonal")
    assert res.converged
    assert res.error(small_sparse) == pytest.approx(
        res.relative_indicator(), rel=1e-6)


def test_orthogonal_formula_denser_factors(small_sparse):
    """The stable L computation introduces additional fill (§II-B3)."""
    schur = lu_crtp(small_sparse, k=8, tol=1e-2, l_formula="schur")
    orth = lu_crtp(small_sparse, k=8, tol=1e-2, l_formula="orthogonal")
    assert orth.L.nnz >= schur.L.nnz


def test_auto_l_formula(small_sparse):
    res = lu_crtp(small_sparse, k=8, tol=1e-2, l_formula="auto")
    assert res.converged


def test_max_rank_cap(small_sparse):
    res = lu_crtp(small_sparse, k=8, tol=1e-12, max_rank=16)
    assert res.rank <= 16
    assert not res.converged


def test_raise_on_failure(small_sparse):
    with pytest.raises(ConvergenceError):
        lu_crtp(small_sparse, k=8, tol=1e-12, max_rank=8,
                raise_on_failure=True)


def test_rectangular_matrices(rng):
    from repro.matrices.generators import random_graded
    for shape in ((80, 50), (50, 80)):
        A = random_graded(*shape, nnz_per_row=5, decay_rate=6.0, seed=3)
        res = lu_crtp(A, k=8, tol=1e-2)
        assert res.converged
        assert res.error(A) == pytest.approx(res.relative_indicator(),
                                             rel=1e-6)


def test_history_carries_trace(small_sparse):
    res = lu_crtp(small_sparse, k=8, tol=1e-2)
    tr = res.history[0].extra["trace"]
    for key in ("m_i", "n_i", "active_nnz", "col_nnz", "schur_flops"):
        assert key in tr
    assert tr["m_i"] == 60
    assert len(tr["col_nnz"]) == tr["n_i"]


def test_deterministic(small_sparse):
    r1 = lu_crtp(small_sparse, k=8, tol=1e-2)
    r2 = lu_crtp(small_sparse, k=8, tol=1e-2)
    assert r1.rank == r2.rank
    np.testing.assert_array_equal(r1.col_perm, r2.col_perm)
    np.testing.assert_allclose(r1.L.toarray(), r2.L.toarray())


def test_last_block_smaller_than_k(rng):
    """n not divisible by k: the final iteration uses a smaller block."""
    from repro.matrices.generators import random_graded
    A = random_graded(30, 30, nnz_per_row=4, decay_rate=1.0, seed=5)
    res = lu_crtp(A, k=8, tol=1e-14, max_rank=30,
                  stop_at_numerical_rank=False)
    assert res.rank == 30


def test_invalid_params():
    with pytest.raises(ValueError):
        LU_CRTP(k=0)
    with pytest.raises(ValueError):
        LU_CRTP(l_formula="bogus")


def test_strong_rrqr_variant(small_sparse):
    res = lu_crtp(small_sparse, k=8, tol=1e-2, strong_rrqr=True)
    assert res.converged


def test_identity_matrix():
    A = sp.identity(20, format="csc")
    res = lu_crtp(A, k=4, tol=1e-1)
    # identity has flat spectrum: needs nearly full rank
    assert res.rank >= 18 or res.converged


def test_native_schur_engine_identical(small_sparse):
    """The from-scratch SpGEMM engine reproduces scipy's Schur exactly."""
    base = lu_crtp(small_sparse, k=8, tol=1e-2)
    nat = lu_crtp(small_sparse, k=8, tol=1e-2, schur_engine="native")
    assert nat.rank == base.rank
    np.testing.assert_allclose(nat.L.toarray(), base.L.toarray(), atol=1e-12)
    np.testing.assert_allclose(nat.U.toarray(), base.U.toarray(), atol=1e-12)


def test_column_discarding_preserves_quality(small_sparse):
    """Cayrols-style candidate discarding changes only pivot-search work:
    the result still converges to the tolerance."""
    dis = lu_crtp(small_sparse, k=8, tol=1e-2, discard_small_columns=1e-3)
    assert dis.converged
    assert dis.error(small_sparse) < 1e-2
    assert sorted(dis.col_perm.tolist()) == list(range(60))


def test_column_discarding_fallback_when_too_aggressive(small_sparse):
    """A cutoff excluding almost everything falls back to the full set."""
    dis = lu_crtp(small_sparse, k=8, tol=1e-2, discard_small_columns=0.999)
    assert dis.converged


def test_householder_qr_engine(small_sparse):
    """The sparse-Householder QR engine (SuiteSparseQR counterpart) yields
    the same-quality factorization as CholeskyQR2."""
    hh = lu_crtp(small_sparse, k=8, tol=1e-2, qr_engine="householder")
    ch = lu_crtp(small_sparse, k=8, tol=1e-2)
    assert hh.converged
    assert hh.rank == ch.rank
    assert hh.error(small_sparse) == pytest.approx(
        hh.relative_indicator(), rel=1e-8)
