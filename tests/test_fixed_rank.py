"""Tests for repro.core.fixed_rank (fixed-rank problem interface)."""

import numpy as np
import pytest

from repro.core.fixed_rank import fixed_rank_lu_crtp, fixed_rank_qb


def test_qb_exact_rank(small_sparse):
    res = fixed_rank_qb(small_sparse, 24, k=8)
    assert res.rank == 24
    assert res.converged
    assert res.Q.shape == (60, 24)


def test_qb_does_not_stop_early(rank_deficient):
    """Even when the tolerance would be met at low rank, fixed-rank mode
    keeps going to the requested rank."""
    res = fixed_rank_qb(rank_deficient, 20, k=4)
    assert res.rank == 20


def test_qb_rank_capped_by_dims(small_sparse):
    res = fixed_rank_qb(small_sparse, 500, k=16)
    assert res.rank == 60


def test_qb_one_shot_vs_blocked(small_sparse):
    one = fixed_rank_qb(small_sparse, 16)
    blocked = fixed_rank_qb(small_sparse, 16, k=4)
    assert one.rank == blocked.rank == 16
    # both capture the dominant subspace comparably
    e1 = one.error(small_sparse)
    e2 = blocked.error(small_sparse)
    assert abs(e1 - e2) < 0.5 * max(e1, e2) + 1e-6


def test_qb_error_decreases_with_rank(small_sparse):
    errs = [fixed_rank_qb(small_sparse, r, k=8).error(small_sparse)
            for r in (8, 24, 40)]
    assert errs[0] > errs[1] > errs[2]


def test_lu_exact_rank(small_sparse):
    res = fixed_rank_lu_crtp(small_sparse, 24, k=8)
    assert res.rank == 24
    assert res.converged
    assert res.L.shape == (60, 24)
    # indicator still exact in fixed-rank mode
    assert res.error(small_sparse) == pytest.approx(
        res.relative_indicator(), rel=1e-8)


def test_lu_near_optimal_error(small_sparse):
    """Fixed-rank LU_CRTP error within a polynomial factor of Eckart-Young
    (the rank-revealing guarantee of [10])."""
    rank = 16
    res = fixed_rank_lu_crtp(small_sparse, rank, k=8)
    s = np.linalg.svd(small_sparse.toarray(), compute_uv=False)
    optimal = np.sqrt(np.sum(s[rank:] ** 2))
    achieved = res.error(small_sparse) * res.a_fro
    assert achieved <= 30 * optimal + 1e-12


def test_invalid_rank(small_sparse):
    with pytest.raises(ValueError):
        fixed_rank_qb(small_sparse, 0)
    with pytest.raises(ValueError):
        fixed_rank_lu_crtp(small_sparse, -3)
