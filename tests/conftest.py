"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def small_sparse(rng):
    """A 60x60 sparse matrix with exponentially graded singular values."""
    from repro.matrices.generators import random_graded
    return random_graded(60, 60, nnz_per_row=6, decay_rate=6.0, seed=5)


@pytest.fixture
def tall_sparse(rng):
    """A 120x40 rectangular sparse matrix."""
    from repro.matrices.generators import random_graded
    return random_graded(120, 40, nnz_per_row=5, decay_rate=4.0, seed=6)


@pytest.fixture
def rank_deficient():
    """Exactly rank-12 sparse 50x50 matrix."""
    rng = np.random.default_rng(7)
    X = sp.random(50, 12, density=0.5, random_state=rng,
                  data_rvs=rng.standard_normal)
    Y = sp.random(12, 50, density=0.5, random_state=rng,
                  data_rvs=rng.standard_normal)
    return (X @ Y).tocsc()


def dense_of(A):
    return A.toarray() if sp.issparse(A) else np.asarray(A, dtype=float)


@pytest.fixture
def assert_fro_close():
    def _check(A, B, rtol=1e-10, msg=""):
        A, B = dense_of(A), dense_of(B)
        denom = max(np.linalg.norm(A), 1e-300)
        assert np.linalg.norm(A - B) <= rtol * denom, msg
    return _check
