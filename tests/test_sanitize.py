"""Runtime SPMD sanitizer tests (``REPRO_SANITIZE=1``).

Covers the two sanitizers on both backends:

- collective fingerprinting — a rank-divergent collective raises a typed
  :class:`~repro.exceptions.CollectiveMismatchError` naming the divergent
  rank and both call sites, on the thread backend and on every procs
  transport (flat hub, binomial tree, chunked ring);
- read-only shared views — writing through a distributed matrix window
  raises instead of corrupting the neighbor ranks' input, with
  :func:`~repro.sparse.window.copy_for_write` as the escape hatch;

plus the regression the sanitizers must not break: with sanitizers *on*,
factors and comm ledgers stay bitwise identical to a plain run.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import CollectiveMismatchError
from repro.parallel import MachineModel, run_spmd
from repro.parallel import sanitize
from repro.parallel.spmd import spmd_randqb_ei
from repro.sparse.window import copy_for_write, csr_row_window


@pytest.fixture
def A96():
    from repro.matrices.generators import random_graded
    return random_graded(96, 48, nnz_per_row=5, decay_rate=5.0, seed=3)


@pytest.fixture
def san(monkeypatch):
    monkeypatch.setenv(sanitize.ENV_VAR, "1")


def _divergent(comm):
    if comm.rank == 1:
        return comm.gather(np.ones(3))  # repro: noqa[SPMD001] - on purpose
    return comm.bcast(np.ones(3) if comm.rank == 0 else None)


def _divergent_allreduce(comm):
    x = np.arange(8.0)
    if comm.rank % 2 == 0:
        return comm.allreduce_sum(x)  # repro: noqa[SPMD001] - on purpose
    return comm.allreduce_sum(x + 1.0)  # repro: noqa[SPMD001] - on purpose


def _clean(comm):
    x = comm.bcast(np.arange(4.0) if comm.rank == 0 else None)
    return comm.allreduce_sum(x * (comm.rank + 1))


def _bitwise_equal(a, b):
    if isinstance(a, np.ndarray):
        return (isinstance(b, np.ndarray) and a.dtype == b.dtype
                and a.shape == b.shape and a.tobytes() == b.tobytes())
    if isinstance(a, (tuple, list)):
        return (len(a) == len(b)
                and all(_bitwise_equal(x, y) for x, y in zip(a, b)))
    if isinstance(a, dict):
        return (set(a) == set(b)
                and all(_bitwise_equal(a[k], b[k]) for k in a))
    return a == b


# ---------------------------------------------------------------------------
# sanitize module unit tests
# ---------------------------------------------------------------------------

def test_enabled_parses_truthy_values(monkeypatch):
    for val, want in [("1", True), ("true", True), (" ON ", True),
                      ("yes", True), ("0", False), ("", False),
                      ("off", False)]:
        monkeypatch.setenv(sanitize.ENV_VAR, val)
        assert sanitize.enabled() is want, val
    monkeypatch.delenv(sanitize.ENV_VAR)
    assert sanitize.enabled() is False


def test_is_wrapped_tolerates_array_payloads():
    # an (ndarray, x, y) tuple must not trip the elementwise == trap
    assert not sanitize.is_wrapped((np.ones(3), 1, 2))
    wrapped = sanitize.wrap(("k", "bcast", 0, "x.py:1"), np.ones(3))
    assert sanitize.is_wrapped(wrapped)


def test_check_fingerprints_ignores_kernel_label():
    # kernel labels are rank-local cost attribution, not lockstep state
    fp_a = ("sparse_qr", "bcast", 0, "spmd.py:232")
    fp_b = ("col_qr_tp", "bcast", 0, "spmd.py:232")
    deposits = {0: sanitize.wrap(fp_a, "p0"), 1: sanitize.wrap(fp_b, "p1")}
    assert sanitize.check_fingerprints(deposits) == {0: "p0", 1: "p1"}


def test_check_fingerprints_raises_on_divergence():
    fp_a = ("k", "bcast", 0, "prog.py:10")
    fp_b = ("k", "gather", 0, "prog.py:20")
    deposits = {0: sanitize.wrap(fp_a, None), 1: sanitize.wrap(fp_b, None)}
    with pytest.raises(CollectiveMismatchError) as exc:
        sanitize.check_fingerprints(deposits)
    err = exc.value
    assert (err.rank_a, err.op_a) == (0, "bcast")
    assert (err.rank_b, err.op_b) == (1, "gather")
    assert err.site_a.endswith(":10") and err.site_b.endswith(":20")


# ---------------------------------------------------------------------------
# collective-mismatch detection, all backends / transports
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", ["threads", "procs"])
def test_mismatch_raises_flat(san, backend):
    with pytest.raises(CollectiveMismatchError) as exc:
        run_spmd(4, _divergent, backend=backend)
    err = exc.value
    assert err.rank_a == 0 and err.op_a == "bcast"
    assert err.rank_b == 1 and err.op_b == "gather"
    assert "test_sanitize.py" in err.site_a
    assert err.site_a != err.site_b


def test_mismatch_raises_procs_tree(san):
    with pytest.raises(CollectiveMismatchError) as exc:
        run_spmd(4, _divergent, backend="procs",
                 machine=MachineModel(comm_algo="tree"))
    err = exc.value
    assert {err.op_a, err.op_b} == {"bcast", "gather"}


def test_mismatch_raises_procs_ring(san):
    # even P + comm_algo="tree" routes allreduce_sum through the chunked
    # ring; neighbors compare fingerprints segment-by-segment
    with pytest.raises(CollectiveMismatchError) as exc:
        run_spmd(4, _divergent_allreduce, backend="procs",
                 machine=MachineModel(comm_algo="tree"))
    err = exc.value
    assert err.op_a == err.op_b == "allreduce"
    assert err.site_a != err.site_b


def test_mismatch_names_program_call_sites(san):
    with pytest.raises(CollectiveMismatchError) as exc:
        run_spmd(2, _divergent)
    msg = str(exc.value)
    # the fingerprint walks past the communicator internals to this file
    assert "test_sanitize.py" in msg
    assert "same order" in msg


# ---------------------------------------------------------------------------
# sanitizers must not perturb clean runs
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", ["threads", "procs"])
def test_clean_program_bitwise_stable_under_sanitize(monkeypatch, backend):
    monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
    off = run_spmd(4, _clean, backend=backend)
    monkeypatch.setenv(sanitize.ENV_VAR, "1")
    on = run_spmd(4, _clean, backend=backend)
    assert _bitwise_equal(on["results"], off["results"])
    assert on["comm"] == off["comm"]  # FP_TAG wrappers are ledger-invisible


def test_procs_solver_factors_bitwise_identical_with_sanitizers(
        monkeypatch, A96):
    monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
    off = run_spmd(4, spmd_randqb_ei, A96, k=8, tol=1e-2, seed=0,
                   backend="procs")
    monkeypatch.setenv(sanitize.ENV_VAR, "1")
    on = run_spmd(4, spmd_randqb_ei, A96, k=8, tol=1e-2, seed=0,
                  backend="procs")
    assert _bitwise_equal(on["results"], off["results"])
    assert on["comm"] == off["comm"]


# ---------------------------------------------------------------------------
# read-only shared views
# ---------------------------------------------------------------------------

def _window_probe(comm, M):
    from repro.parallel.distribution import block_ranges
    lo, hi = block_ranges(M.shape[0], comm.nprocs)[comm.rank]
    W = csr_row_window(M, lo, hi)
    try:
        W.data[0] = -1.0
        return "wrote"
    except ValueError:
        return "readonly"


def test_window_write_raises_under_sanitize(san):
    A = sp.random(20, 10, density=0.4, format="csr", random_state=0)
    W = csr_row_window(A, 5, 15)
    with pytest.raises(ValueError, match="read-only"):
        W.data[0] = 99.0
    with pytest.raises(ValueError, match="read-only"):
        W.data *= 2.0
    with pytest.raises(ValueError, match="read-only"):
        W.indices[0] = 0


def test_window_stays_writable_without_sanitize(monkeypatch):
    monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
    A = sp.random(20, 10, density=0.4, format="csr", random_state=0)
    W = csr_row_window(A, 5, 15)
    W.data[0] = W.data[0]  # legacy behavior: zero-overhead, writable
    assert W.data.flags.writeable


def test_copy_for_write_gives_private_writable_copy(san):
    A = sp.random(20, 10, density=0.4, format="csr", random_state=0)
    W = csr_row_window(A, 5, 15)
    before = A.data.copy()
    C = copy_for_write(W)
    C.data[:] = 123.0
    C.sort_indices()
    assert np.array_equal(A.data, before)  # original untouched
    with pytest.raises(ValueError):
        W.data[0] = 0.0  # the window itself stays read-only


def test_copy_for_write_on_readonly_ndarray(san):
    arr = np.arange(5.0)
    arr.flags.writeable = False
    c = copy_for_write(arr)
    c[0] = 7.0
    assert arr[0] == 0.0 and c[0] == 7.0


@pytest.mark.parametrize("backend", ["threads", "procs"])
def test_rank_windows_readonly_on_both_backends(san, backend):
    A = sp.random(24, 12, density=0.4, format="csr", random_state=1)
    out = run_spmd(2, _window_probe, A, backend=backend)
    assert out["results"] == ["readonly", "readonly"]
