"""Tests for repro.matrices.mmio (Matrix Market I/O)."""

import io

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import MatrixFormatError
from repro.matrices.mmio import read_matrix_market, write_matrix_market


def test_roundtrip(small_sparse, tmp_path):
    path = tmp_path / "a.mtx"
    write_matrix_market(small_sparse, path, comment="test matrix")
    B = read_matrix_market(path)
    assert (small_sparse != B).nnz == 0


def test_roundtrip_stringio(small_sparse):
    buf = io.StringIO()
    write_matrix_market(small_sparse, buf)
    buf.seek(0)
    B = read_matrix_market(buf)
    np.testing.assert_allclose(B.toarray(), small_sparse.toarray())


def test_roundtrip_exact_values(tmp_path):
    A = sp.csc_matrix(np.array([[1.0 / 3.0, 0.0], [0.0, -2.725e-15]]))
    buf = io.StringIO()
    write_matrix_market(A, buf)
    buf.seek(0)
    B = read_matrix_market(buf)
    np.testing.assert_array_equal(B.toarray(), A.toarray())  # repr roundtrip


def test_read_symmetric():
    text = """%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 4
1 1 2.0
2 1 -1.0
3 2 -1.0
3 3 2.0
"""
    A = read_matrix_market(io.StringIO(text)).toarray()
    np.testing.assert_allclose(A, A.T)
    assert A[0, 1] == -1.0 and A[1, 0] == -1.0


def test_read_skew_symmetric():
    text = """%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 5.0
"""
    A = read_matrix_market(io.StringIO(text)).toarray()
    assert A[1, 0] == 5.0
    assert A[0, 1] == -5.0


def test_read_pattern():
    text = """%%MatrixMarket matrix coordinate pattern general
2 3 2
1 2
2 3
"""
    A = read_matrix_market(io.StringIO(text)).toarray()
    assert A[0, 1] == 1.0 and A[1, 2] == 1.0
    assert A.sum() == 2.0


def test_read_integer_field():
    text = """%%MatrixMarket matrix coordinate integer general
2 2 1
1 1 7
"""
    A = read_matrix_market(io.StringIO(text))
    assert A[0, 0] == 7.0


def test_bad_header():
    with pytest.raises(MatrixFormatError):
        read_matrix_market(io.StringIO("not a header\n1 1 0\n"))
    with pytest.raises(MatrixFormatError):
        read_matrix_market(io.StringIO(
            "%%MatrixMarket matrix array real general\n"))


def test_bad_field():
    with pytest.raises(MatrixFormatError):
        read_matrix_market(io.StringIO(
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n"))


def test_truncated_file():
    text = """%%MatrixMarket matrix coordinate real general
3 3 2
1 1 1.0
"""
    with pytest.raises(MatrixFormatError, match="truncated"):
        read_matrix_market(io.StringIO(text))


def test_out_of_range_index():
    text = """%%MatrixMarket matrix coordinate real general
2 2 1
3 1 1.0
"""
    with pytest.raises(MatrixFormatError, match="out of range"):
        read_matrix_market(io.StringIO(text))


def test_bad_size_line():
    text = "%%MatrixMarket matrix coordinate real general\nfoo bar\n"
    with pytest.raises(MatrixFormatError):
        read_matrix_market(io.StringIO(text))


def test_duplicates_summed():
    text = """%%MatrixMarket matrix coordinate real general
2 2 2
1 1 1.5
1 1 2.5
"""
    A = read_matrix_market(io.StringIO(text))
    assert A[0, 0] == 4.0
    assert A.nnz == 1
