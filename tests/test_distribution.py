"""Tests for repro.parallel.distribution."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import DistributionError
from repro.parallel.distribution import (
    block_cyclic_columns,
    block_ranges,
    cyclic_owner,
    partition_cols_csc,
    partition_rows_csr,
    per_rank_nnz_cols,
    per_rank_nnz_rows,
)


def test_block_ranges_cover():
    r = block_ranges(10, 3)
    assert r == [(0, 4), (4, 7), (7, 10)]
    assert block_ranges(2, 4) == [(0, 1), (1, 2), (2, 2), (2, 2)]


def test_block_ranges_invalid():
    with pytest.raises(DistributionError):
        block_ranges(5, 0)


def test_cyclic_owner():
    o = cyclic_owner(8, 2, 2)
    np.testing.assert_array_equal(o, [0, 0, 1, 1, 0, 0, 1, 1])
    with pytest.raises(DistributionError):
        cyclic_owner(4, 2, 0)


def test_block_cyclic_columns_partition():
    sets = block_cyclic_columns(10, 3, 2)
    allidx = np.sort(np.concatenate(sets))
    np.testing.assert_array_equal(allidx, np.arange(10))


def test_partition_rows_reassembles(small_sparse):
    parts = partition_rows_csr(small_sparse, 4)
    stacked = sp.vstack(parts)
    np.testing.assert_allclose(stacked.toarray(), small_sparse.toarray())


def test_partition_cols_reassembles(small_sparse):
    parts, idx = partition_cols_csc(small_sparse, 3, block=4)
    D = small_sparse.toarray()
    for blk, ids in zip(parts, idx):
        np.testing.assert_allclose(blk.toarray(), D[:, ids])
    allidx = np.sort(np.concatenate(idx))
    np.testing.assert_array_equal(allidx, np.arange(60))


def test_per_rank_nnz_cols_matches_actual(small_sparse):
    col_nnz = np.diff(small_sparse.tocsc().indptr)
    parts, _ = partition_cols_csc(small_sparse, 4, block=8)
    predicted = per_rank_nnz_cols(col_nnz, 4, 8)
    actual = np.array([p.nnz for p in parts])
    np.testing.assert_array_equal(predicted, actual)


def test_per_rank_nnz_rows_matches_actual(small_sparse):
    row_nnz = np.diff(small_sparse.tocsr().indptr)
    parts = partition_rows_csr(small_sparse, 5)
    predicted = per_rank_nnz_rows(row_nnz, 5)
    actual = np.array([p.nnz for p in parts])
    np.testing.assert_array_equal(predicted, actual)


def test_more_ranks_than_items():
    parts = partition_rows_csr(sp.identity(2, format="csr"), 5)
    assert len(parts) == 5
    assert sum(p.shape[0] for p in parts) == 2
