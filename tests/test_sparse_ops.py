"""Tests for repro.sparse.ops (permutations, splits, factor assembly)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.ops import (
    assemble_L_global,
    assemble_truncated_L,
    assemble_truncated_U,
    assemble_U_global,
    extract_columns,
    hstack_factors,
    permute,
    permute_cols,
    permute_rows,
    split_2x2,
    vstack_factors,
)


def test_permute_rows(small_sparse, rng):
    perm = rng.permutation(60)
    P = permute_rows(small_sparse, perm)
    np.testing.assert_allclose(P.toarray(), small_sparse.toarray()[perm])


def test_permute_cols(small_sparse, rng):
    perm = rng.permutation(60)
    P = permute_cols(small_sparse, perm)
    np.testing.assert_allclose(P.toarray(), small_sparse.toarray()[:, perm])


def test_permute_both(small_sparse, rng):
    rp, cp = rng.permutation(60), rng.permutation(60)
    P = permute(small_sparse, rp, cp)
    np.testing.assert_allclose(P.toarray(),
                               small_sparse.toarray()[np.ix_(rp, cp)])


def test_permute_none_is_identity(small_sparse):
    P = permute(small_sparse, None, None)
    np.testing.assert_allclose(P.toarray(), small_sparse.toarray())


def test_split_2x2(small_sparse):
    A11, A12, A21, A22 = split_2x2(small_sparse, 13)
    D = small_sparse.toarray()
    np.testing.assert_allclose(A11.toarray(), D[:13, :13])
    np.testing.assert_allclose(A12.toarray(), D[:13, 13:])
    np.testing.assert_allclose(A21.toarray(), D[13:, :13])
    np.testing.assert_allclose(A22.toarray(), D[13:, 13:])


def test_split_invalid_k(small_sparse):
    with pytest.raises(ValueError):
        split_2x2(small_sparse, 0)
    with pytest.raises(ValueError):
        split_2x2(small_sparse, 61)


def test_extract_columns(small_sparse):
    cols = np.array([5, 2, 40])
    B = extract_columns(small_sparse, cols)
    np.testing.assert_allclose(B.toarray(), small_sparse.toarray()[:, cols])


def test_hstack_vstack(rng):
    A = sp.random(6, 3, density=0.5, random_state=np.random.default_rng(0))
    B = sp.random(6, 2, density=0.5, random_state=np.random.default_rng(1))
    H = hstack_factors([A, B])
    assert H.shape == (6, 5)
    V = vstack_factors([A.T, B.T])
    assert V.shape == (5, 6)
    np.testing.assert_allclose(H.toarray(), V.T.toarray())


def test_stack_empty_raises():
    with pytest.raises(ValueError):
        hstack_factors([])
    with pytest.raises(ValueError):
        vstack_factors([])


def test_assemble_truncated_L_staircase():
    # two blocks: (5x2) then (3x2) -> L is 5x4, block 2 starts at row 2
    b1 = sp.csc_matrix(np.arange(10, dtype=float).reshape(5, 2))
    b2 = sp.csc_matrix(np.ones((3, 2)))
    L = assemble_truncated_L([b1, b2], 5)
    assert L.shape == (5, 4)
    D = L.toarray()
    np.testing.assert_allclose(D[:, :2], b1.toarray())
    np.testing.assert_allclose(D[2:, 2:], b2.toarray())
    assert np.all(D[:2, 2:] == 0)


def test_assemble_truncated_U_staircase():
    b1 = sp.csr_matrix(np.arange(10, dtype=float).reshape(2, 5))
    b2 = sp.csr_matrix(np.ones((2, 3)))
    U = assemble_truncated_U([b1, b2], 5)
    assert U.shape == (4, 5)
    D = U.toarray()
    np.testing.assert_allclose(D[:2], b1.toarray())
    np.testing.assert_allclose(D[2:, 2:], b2.toarray())


def test_assemble_L_global_with_reordering():
    """Rows recorded under original ids land at final positions."""
    m = 5
    # one block spanning rows of a 5-row matrix, created when the active
    # rows (by original id) were [4, 0, 2, 1, 3]
    blk = sp.csc_matrix(np.array([[1.0], [2.0], [3.0], [4.0], [5.0]]))
    ids = np.array([4, 0, 2, 1, 3])
    final_perm = np.array([4, 1, 0, 2, 3])  # final row order by original id
    L = assemble_L_global([blk], [ids], final_perm, m)
    # entry with value v was recorded for original row ids[i]; its final row
    # is where that id sits in final_perm
    D = L.toarray()[:, 0]
    for v, oid in zip([1, 2, 3, 4, 5], ids):
        final_row = int(np.flatnonzero(final_perm == oid)[0])
        assert D[final_row] == v


def test_assemble_U_global_with_reordering():
    n = 4
    blk = sp.csr_matrix(np.array([[1.0, 2.0, 3.0, 4.0]]))
    ids = np.array([2, 0, 3, 1])
    final_perm = np.array([2, 3, 0, 1])
    U = assemble_U_global([blk], [ids], final_perm, n)
    D = U.toarray()[0]
    for v, oid in zip([1, 2, 3, 4], ids):
        final_col = int(np.flatnonzero(final_perm == oid)[0])
        assert D[final_col] == v


def test_assemble_global_empty():
    L = assemble_L_global([], [], np.arange(6), 6)
    assert L.shape == (6, 0)
    U = assemble_U_global([], [], np.arange(6), 6)
    assert U.shape == (0, 6)
