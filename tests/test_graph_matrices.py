"""Tests for repro.matrices.graph."""

import numpy as np
import scipy.sparse as sp

from repro.matrices.graph import (
    bipartite_interaction,
    normalized_laplacian,
    scale_free_adjacency,
    small_world_adjacency,
)


def test_scale_free_structure():
    A = scale_free_adjacency(200, m_edges=3, seed=1)
    assert A.shape == (200, 200)
    D = A.toarray()
    np.testing.assert_allclose(D, D.T)  # undirected
    deg = (D != 0).sum(axis=1)
    # scale-free: max degree far above median
    assert deg.max() > 5 * np.median(deg)


def test_scale_free_unweighted():
    A = scale_free_adjacency(100, weighted=False, seed=2)
    assert set(np.unique(A.data)) == {1.0}


def test_small_world_structure():
    A = small_world_adjacency(150, k_ring=6, p_rewire=0.05, seed=3)
    deg = (A.toarray() != 0).sum(axis=1)
    # narrow degree distribution (ring-like)
    assert deg.max() <= 12


def test_spectral_decay_contrast():
    """Scale-free adjacency decays faster than small-world (hub mass)."""
    from repro.matrices.spectra import effective_rank
    sf = scale_free_adjacency(300, seed=4)
    sw = small_world_adjacency(300, seed=4)
    s_sf = np.linalg.svd(sf.toarray(), compute_uv=False)
    s_sw = np.linalg.svd(sw.toarray(), compute_uv=False)
    assert effective_rank(s_sf, 0.3) < effective_rank(s_sw, 0.3)


def test_normalized_laplacian_spectrum():
    A = scale_free_adjacency(120, seed=5)
    L = normalized_laplacian(A)
    w = np.linalg.eigvalsh(L.toarray())
    assert w.min() > -1e-8
    assert w.max() < 2.0 + 1e-8


def test_normalized_laplacian_isolated_nodes():
    A = sp.csc_matrix((5, 5))
    L = normalized_laplacian(A)
    np.testing.assert_allclose(L.toarray(), np.eye(5))


def test_bipartite_interaction_shape():
    R = bipartite_interaction(80, 30, interactions_per_user=5, seed=6)
    assert R.shape == (80, 30)
    row_nnz = np.diff(R.tocsr().indptr)
    assert np.all(row_nnz <= 5)
    assert np.all(row_nnz >= 1)


def test_bipartite_popularity_skew():
    R = bipartite_interaction(300, 100, interactions_per_user=6,
                              popularity_decay=1.5, seed=7)
    col_nnz = np.diff(R.tocsc().indptr)
    # early (popular) items collect far more interactions
    assert col_nnz[:10].sum() > 3 * col_nnz[-50:].sum()


def test_solvers_work_on_graph_matrices():
    from repro import ilut_crtp, randqb_ei
    A = scale_free_adjacency(200, seed=8)
    qb = randqb_ei(A, k=16, tol=3e-1)
    assert qb.converged
    il = ilut_crtp(A, k=16, tol=3e-1, estimated_iterations=5)
    assert il.converged
    assert il.error(A) < 3e-1
