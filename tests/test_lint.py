"""Tests for the :mod:`repro.lint` static-analysis pass.

The fixture files in ``tests/lint_fixtures/`` tag every expected
violation with ``# expect: CODE`` on the offending line; the tests
compare that tag set against the findings *exactly* (same codes, same
lines, nothing extra), so both false negatives and false positives fail.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.findings import Finding
from repro.lint.framework import (
    all_rules,
    lint_paths,
    lint_source,
    suppressed_lines,
)

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
REPO = Path(__file__).resolve().parents[1]
_EXPECT_RE = re.compile(r"#\s*expect:\s*((?:SPMD|KERN)\d{3})")

FIXTURE_FILES = (
    "spmd001_collectives.py",
    "spmd002_sharedviews.py",
    "spmd003_determinism.py",
    "spmd004_kerneltier.py",
    # KERN fixtures are directories: a bindings module plus the sibling
    # src/kernels.h the ABI rules resolve by convention
    "kern_ok/bindings.py",
    "kern_arity/bindings.py",
    "kern_types/bindings.py",
    "kern_width/bindings.py",
)


def expected_findings(path: Path) -> set[tuple[int, str]]:
    out = set()
    for i, line in enumerate(path.read_text().splitlines(), start=1):
        m = _EXPECT_RE.search(line)
        if m:
            out.add((i, m.group(1)))
    return out


# ---------------------------------------------------------------------------
# fixtures: exact codes and lines
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name,code", [
    ("spmd001_collectives.py", "SPMD001"),
    ("spmd002_sharedviews.py", "SPMD002"),
    ("spmd003_determinism.py", "SPMD003"),
    ("spmd004_kerneltier.py", "SPMD004"),
    ("kern_arity/bindings.py", "KERN001"),
    ("kern_types/bindings.py", "KERN002"),
    ("kern_width/bindings.py", "KERN003"),
])
def test_fixture_exact_findings_with_select(name, code):
    path = FIXTURES / name
    expected = expected_findings(path)
    assert expected, f"fixture {name} has no # expect tags"
    findings = lint_paths([path], select=[code])
    assert {(f.line, f.code) for f in findings} == expected


@pytest.mark.parametrize("name", FIXTURE_FILES)
def test_fixture_exact_findings_all_rules(name):
    # running *every* rule over a fixture must add nothing beyond the tags
    path = FIXTURES / name
    findings = lint_paths([path])
    assert {(f.line, f.code) for f in findings} == expected_findings(path)


def test_kerneltier_registry_package_is_exempt():
    src = "from repro.kernels import native\nfrom .native import build\n"
    inside = lint_source(src, path="src/repro/kernels/tiers.py",
                         select=["SPMD004"])
    assert inside == []
    outside = lint_source(src, path="src/repro/core/lu_crtp.py",
                          select=["SPMD004"])
    assert {f.line for f in outside} == {1}  # relative .native needs kernels


def test_spmd004_flags_core_conversions():
    src = ("def f(A):\n"
           "    B = A.tocsc()\n"
           "    C = A.tocsr()  # repro: noqa[SPMD004]\n"
           "    return B, C\n")
    core = lint_source(src, path="src/repro/core/apply.py",
                       select=["SPMD004"])
    assert {(f.line, f.symbol) for f in core} == {(2, "tocsc")}
    assert "ensure_csc" in core[0].message
    # conversions outside repro/core/ are not the rule's business
    outside = lint_source(src, path="src/repro/sparse/utils.py",
                          select=["SPMD004"])
    assert outside == []


def test_fixture_findings_carry_symbol_and_message():
    path = FIXTURES / "spmd001_collectives.py"
    findings = lint_paths([path], select=["SPMD001"])
    by_symbol = {f.symbol for f in findings}
    assert "branch_collective" in by_symbol
    assert "early_return_skips_collective" in by_symbol
    early = [f for f in findings
             if f.symbol == "early_return_skips_collective"]
    assert "early return" in early[0].message
    assert "bcast" in early[0].message


# ---------------------------------------------------------------------------
# KERN ABI-contract rules
# ---------------------------------------------------------------------------

def test_kern_clean_fixture_has_no_findings():
    assert lint_paths([FIXTURES / "kern_ok" / "bindings.py"]) == []


def test_kern_rules_ignore_modules_without_abi_table():
    # a module with no _ABI never triggers the family — even with no
    # header anywhere near it
    assert lint_source("x = 1\n", path="src/repro/core/apply.py",
                       select=["KERN001", "KERN002", "KERN003"]) == []


def test_kern_findings_name_the_exact_mismatch():
    arity = lint_paths([FIXTURES / "kern_arity" / "bindings.py"],
                       select=["KERN001"])
    msgs = {f.symbol: f.message for f in arity}
    assert "4 parameter(s), _ABI declares 3" in msgs["rk_fix_axpy"]
    assert "absent from the _ABI table" in msgs["rk_fix_orphan"]
    assert "no RK_EXPORT prototype" in msgs["rk_fix_ghost"]

    width = lint_paths([FIXTURES / "kern_width" / "bindings.py"],
                       select=["KERN003"])
    gather = [f for f in width if f.symbol == "rk_fix_gather_i32"]
    assert "int64_t (64-bit)" in gather[0].message
    assert "i32* (32-bit)" in gather[0].message


def test_kern_missing_header_is_kern001(tmp_path):
    mod = tmp_path / "bindings.py"
    mod.write_text('_ABI = {"rk_x": ("i64", ("i64",))}\n')
    findings = lint_paths([mod])
    assert [f.code for f in findings] == ["KERN001"]
    assert "src/kernels.h" in findings[0].message


def test_kern_noqa_suppresses_on_the_entry_line(tmp_path):
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "kernels.h").write_text(
        "#include <stdint.h>\n"
        "#define RK_EXPORT\n"
        "RK_EXPORT void rk_x(int64_t n, double *v);\n")
    mod = tmp_path / "bindings.py"
    mod.write_text(
        '_ABI = {\n'
        '    "rk_x": ("i64", ("i64", "f64*")),  # repro: noqa[KERN002]\n'
        '}\n')
    assert lint_paths([mod]) == []
    # the suppression is per-code: the same drift under KERN001-only
    # suppression still fires
    mod.write_text(
        '_ABI = {\n'
        '    "rk_x": ("i64", ("i64", "f64*")),  # repro: noqa[KERN001]\n'
        '}\n')
    assert [f.code for f in lint_paths([mod])] == ["KERN002"]


# ---------------------------------------------------------------------------
# suppression
# ---------------------------------------------------------------------------

_DIVERGENT = (
    "def f(comm, A):\n"
    "    if comm.rank == 0:\n"
    "        comm.bcast(A, root=0){noqa}\n"
    "    return A\n"
)


def test_noqa_named_code_suppresses():
    src = _DIVERGENT.format(noqa="  # repro: noqa[SPMD001]")
    assert lint_source(src) == []


def test_noqa_wrong_code_does_not_suppress():
    src = _DIVERGENT.format(noqa="  # repro: noqa[SPMD002]")
    assert [f.code for f in lint_source(src)] == ["SPMD001"]


def test_bare_noqa_suppresses_every_code():
    src = _DIVERGENT.format(noqa="  # repro: noqa")
    assert lint_source(src) == []


def test_plain_flake8_noqa_does_not_suppress():
    # the marker is deliberately namespaced; a bare flake8-style noqa
    # must not swallow SPMD findings
    src = _DIVERGENT.format(noqa="  # noqa")
    assert [f.code for f in lint_source(src)] == ["SPMD001"]


def test_suppressed_lines_parsing():
    src = ("x = 1  # repro: noqa\n"
           "y = 2  # repro: noqa[SPMD001, SPMD003]\n"
           "z = 3\n")
    lines = suppressed_lines(src)
    assert lines[1] is None
    assert lines[2] == frozenset({"SPMD001", "SPMD003"})
    assert 3 not in lines


# ---------------------------------------------------------------------------
# framework
# ---------------------------------------------------------------------------

def test_registry_has_the_seven_rules():
    rules = all_rules()
    assert list(rules) == ["KERN001", "KERN002", "KERN003",
                           "SPMD001", "SPMD002", "SPMD003", "SPMD004"]
    for code, rule in rules.items():
        assert rule.code == code
        assert rule.name
        assert rule.rationale


def test_unknown_select_raises():
    with pytest.raises(ValueError, match="SPMD999"):
        lint_source("x = 1\n", select=["SPMD999"])


def test_syntax_error_becomes_spmd000():
    findings = lint_source("def f(:\n", path="broken.py")
    assert len(findings) == 1
    assert findings[0].code == "SPMD000"
    assert findings[0].path == "broken.py"


def test_findings_sorted_and_rendered():
    f1 = Finding(path="a.py", line=2, col=1, code="SPMD001", message="m1")
    f2 = Finding(path="a.py", line=1, col=1, code="SPMD002", message="m2",
                 symbol="g")
    assert sorted([f1, f2]) == [f2, f1]
    assert f2.render() == "a.py:1:1: SPMD002 m2 [g]"
    assert f1.to_dict()["code"] == "SPMD001"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _run_cli(*args, cwd=REPO):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd, capture_output=True, text=True, env=env, timeout=300)


def test_cli_src_tree_is_clean():
    proc = _run_cli("src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_cli_json_output_and_exit_code():
    proc = _run_cli("--format", "json",
                    str(FIXTURES / "spmd001_collectives.py"))
    assert proc.returncode == 1
    report = json.loads(proc.stdout)
    assert report["count"] == len(report["findings"]) > 0
    first = report["findings"][0]
    assert set(first) == {"path", "line", "col", "code", "message", "symbol"}
    assert first["code"].startswith("SPMD")


def test_cli_select_restricts_rules():
    proc = _run_cli("--select", "SPMD003",
                    str(FIXTURES / "spmd001_collectives.py"))
    assert proc.returncode == 0  # no SPMD003 findings in that fixture


def test_cli_list_rules():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for code in ("SPMD001", "SPMD002", "SPMD003", "SPMD004",
                 "KERN001", "KERN002", "KERN003"):
        assert code in proc.stdout


def test_cli_json_output_for_kern_findings():
    proc = _run_cli("--format", "json", "--select", "KERN002",
                    str(FIXTURES / "kern_types" / "bindings.py"))
    assert proc.returncode == 1
    report = json.loads(proc.stdout)
    assert report["count"] == len(report["findings"]) == 3
    assert {f["code"] for f in report["findings"]} == {"KERN002"}
    assert any("restype mismatch" in f["message"]
               for f in report["findings"])


def test_cli_unknown_rule_is_usage_error():
    proc = _run_cli("--select", "NOPE001", "src")
    assert proc.returncode == 2
    assert "unknown rule" in proc.stderr
