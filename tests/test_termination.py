"""Tests for repro.core.termination (uniform stopping criteria)."""

import numpy as np
import pytest

from repro.core.termination import (
    INDICATOR_DOUBLE_PRECISION_FLOOR,
    RandErrorIndicator,
    check_tolerance,
)
from repro.exceptions import ToleranceTooSmallError


def test_check_tolerance_valid():
    check_tolerance(1e-3, randomized=True)
    check_tolerance(1e-12, randomized=False)  # deterministic has no floor


def test_check_tolerance_range():
    with pytest.raises(ValueError):
        check_tolerance(0.0, randomized=False)
    with pytest.raises(ValueError):
        check_tolerance(1.5, randomized=True)


def test_randomized_floor_raises():
    with pytest.raises(ToleranceTooSmallError):
        check_tolerance(1e-8, randomized=True)


def test_randomized_floor_warns_when_allowed():
    with pytest.warns(RuntimeWarning):
        check_tolerance(1e-8, randomized=True, allow_unsafe=True)


def test_floor_value_matches_paper():
    assert INDICATOR_DOUBLE_PRECISION_FLOOR == pytest.approx(2.1e-7)


def test_indicator_exactness(rng):
    """E^2 = ||A||_F^2 - sum ||B_k||_F^2 equals the true error for an
    orthonormal-Q QB factorization (Theorem of Yu/Gu/Li)."""
    A = rng.standard_normal((30, 20))
    Q, _ = np.linalg.qr(rng.standard_normal((30, 8)))
    B = Q.T @ A
    ind = RandErrorIndicator(np.linalg.norm(A) ** 2)
    val = ind.update(B)
    true = np.linalg.norm(A - Q @ B)
    assert val == pytest.approx(true, rel=1e-10)


def test_indicator_incremental_blocks(rng):
    A = rng.standard_normal((25, 25))
    ind = RandErrorIndicator(np.linalg.norm(A) ** 2)
    Qfull, _ = np.linalg.qr(A)
    for j in range(0, 25, 5):
        Qk = Qfull[:, j:j + 5]
        ind.update(Qk.T @ A)
    assert ind.value < 1e-6 * np.linalg.norm(A)


def test_indicator_clamps_negative():
    ind = RandErrorIndicator(1.0)
    ind.update(np.array([[1.1]]))  # over-subtracts
    assert ind.value == 0.0
    assert ind.underflowed


def test_indicator_converged():
    ind = RandErrorIndicator(100.0)
    assert not ind.converged(0.5)
    ind.update(np.sqrt(99.99) * np.ones((1, 1)))
    assert ind.converged(0.5)


def test_indicator_rejects_negative_norm():
    with pytest.raises(ValueError):
        RandErrorIndicator(-1.0)
