"""Tests for repro.parallel.kernels — SPMD kernels vs sequential references."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.parallel.comm import run_spmd
from repro.parallel.distribution import (
    block_ranges,
    partition_cols_csc,
    partition_rows_csr,
)
from repro.parallel.kernels import (
    par_qt_a,
    par_spmm_rowdist,
    par_tournament_columns,
    par_tsqr,
)


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_par_tsqr_matches_sequential(rng, nprocs):
    A = rng.standard_normal((64, 6))

    def prog(comm):
        lo, hi = block_ranges(64, comm.nprocs)[comm.rank]
        Qloc, R = par_tsqr(comm, A[lo:hi])
        return Qloc, R

    out = run_spmd(nprocs, prog)
    Q = np.vstack([r[0] for r in out["results"]])
    R = out["results"][0][1]
    np.testing.assert_allclose(Q @ R, A, atol=1e-10)
    assert np.linalg.norm(Q.T @ Q - np.eye(6)) < 1e-10
    # R replicated across ranks
    for _, Rr in out["results"]:
        np.testing.assert_allclose(Rr, R)


def test_par_tsqr_requires_tall(rng):
    A = rng.standard_normal((4, 6))

    def prog(comm):
        par_tsqr(comm, A)

    with pytest.raises(ValueError):
        run_spmd(2, prog)


def test_par_spmm(small_sparse, rng):
    B = rng.standard_normal((60, 5))

    def prog(comm):
        loc = partition_rows_csr(small_sparse, comm.nprocs)[comm.rank]
        return par_spmm_rowdist(comm, loc, B)

    out = run_spmd(3, prog)
    Y = np.vstack(out["results"])
    np.testing.assert_allclose(Y, small_sparse @ B, atol=1e-12)


def test_par_qt_a(small_sparse, rng):
    Q = np.linalg.qr(rng.standard_normal((60, 4)))[0]

    def prog(comm):
        ranges = block_ranges(60, comm.nprocs)
        lo, hi = ranges[comm.rank]
        loc = partition_rows_csr(small_sparse, comm.nprocs)[comm.rank]
        return par_qt_a(comm, Q[lo:hi], loc)

    out = run_spmd(4, prog)
    ref = Q.T @ small_sparse.toarray()
    for res in out["results"]:
        np.testing.assert_allclose(res, ref, atol=1e-10)


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_par_tournament_selects_quality(rng, nprocs):
    from repro.matrices.generators import random_graded
    A = random_graded(60, 48, nnz_per_row=5, decay_rate=8.0, seed=7)
    k = 6

    def prog(comm):
        blocks, ids = partition_cols_csc(A, comm.nprocs, block=2 * k)
        return par_tournament_columns(
            comm, blocks[comm.rank].tocsc(), ids[comm.rank], k)

    out = run_spmd(nprocs, prog)
    winners, r_diag = out["results"][0]
    assert winners.size == k
    assert r_diag.size >= 1
    # replicated result
    for w, _ in out["results"]:
        np.testing.assert_array_equal(w, winners)
    # quality: winners span the dominant subspace within an RRQR factor
    D = A.toarray()
    Q, _ = np.linalg.qr(D[:, winners])
    resid = np.linalg.norm(D - Q @ (Q.T @ D), 2)
    s = np.linalg.svd(D, compute_uv=False)
    assert resid <= 50 * s[k]


def test_par_tournament_matches_sequential_single_rank(rng):
    from repro.matrices.generators import random_graded
    from repro.pivoting.tournament import qr_tp
    A = random_graded(40, 32, nnz_per_row=4, decay_rate=6.0, seed=2)
    k = 4

    def prog(comm):
        blocks, ids = partition_cols_csc(A, comm.nprocs, block=2 * k)
        return par_tournament_columns(
            comm, blocks[comm.rank].tocsc(), ids[comm.rank], k)

    out = run_spmd(1, prog)
    winners, _ = out["results"][0]
    seq = qr_tp(A, k, leaf_cols=2 * k)
    np.testing.assert_array_equal(np.sort(winners), np.sort(seq.winners))


def test_par_tournament_empty_rank(rng):
    """More ranks than column blocks: some ranks own zero columns."""
    A = sp.csc_matrix(rng.standard_normal((10, 4)))
    k = 2

    def prog(comm):
        blocks, ids = partition_cols_csc(A, comm.nprocs, block=2 * k)
        return par_tournament_columns(
            comm, blocks[comm.rank].tocsc(), ids[comm.rank], k)

    out = run_spmd(4, prog)
    winners, _ = out["results"][0]
    assert winners.size == k
