"""Tests for repro.parallel.comm (thread-per-rank communicator)."""

import time

import numpy as np
import pytest

from repro.exceptions import CommTimeoutError, CommunicatorError
from repro.parallel.comm import DEFAULT_RECV_TIMEOUT, run_spmd


def test_bcast():
    def prog(comm):
        data = comm.bcast(np.arange(4) if comm.rank == 0 else None, root=0)
        return data.sum()

    out = run_spmd(4, prog)
    assert out["results"] == [6] * 4


def test_scatter_gather():
    def prog(comm):
        chunks = [np.full(2, r) for r in range(comm.nprocs)] \
            if comm.rank == 0 else None
        mine = comm.scatter(chunks, root=0)
        assert np.all(mine == comm.rank)
        back = comm.gather(mine.sum(), root=0)
        if comm.rank == 0:
            return back
        assert back is None
        return None

    out = run_spmd(3, prog)
    assert out["results"][0] == [0, 2, 4]


def test_scatter_wrong_chunks():
    def prog(comm):
        comm.scatter([1, 2], root=0)  # wrong length on root

    with pytest.raises(CommunicatorError):
        run_spmd(3, prog)


def test_allgather():
    def prog(comm):
        return comm.allgather(comm.rank ** 2)

    out = run_spmd(4, prog)
    for res in out["results"]:
        assert res == [0, 1, 4, 9]


def test_allreduce_sum():
    def prog(comm):
        return comm.allreduce_sum(np.ones(3) * (comm.rank + 1))

    out = run_spmd(4, prog)
    for res in out["results"]:
        np.testing.assert_allclose(res, 10 * np.ones(3))


def test_send_recv_ring():
    def prog(comm):
        nxt = (comm.rank + 1) % comm.nprocs
        prev = (comm.rank - 1) % comm.nprocs
        comm.send(comm.rank * 10, nxt)
        got = comm.recv(prev)
        return got

    out = run_spmd(4, prog)
    assert out["results"] == [30, 0, 10, 20]


def test_send_invalid_rank():
    def prog(comm):
        comm.send(1, 99)

    with pytest.raises(CommunicatorError):
        run_spmd(2, prog)


def test_clock_advances_with_charges():
    def prog(comm):
        comm.charge_flops(1e9)  # 0.2 s at default gamma
        comm.barrier_sync()
        return comm.clock()

    out = run_spmd(2, prog)
    assert out["elapsed"] > 0.1


def test_collective_syncs_clocks():
    def prog(comm):
        if comm.rank == 0:
            comm.charge_flops(5e9)  # 1 s: rank 0 is the straggler
        comm.allgather(1)
        return comm.clock()

    out = run_spmd(4, prog)
    # all ranks leave the collective at >= the straggler's time
    assert min(out["results"]) >= 0.99


def test_kernel_attribution():
    def prog(comm):
        comm.kernel("alpha").charge_flops(1e9)
        comm.kernel("beta").charge_flops(2e9)
        return None

    out = run_spmd(2, prog)
    ks = out["kernel_seconds"]
    assert ks["beta"] == pytest.approx(2 * ks["alpha"], rel=1e-6)


def test_exception_propagates():
    def prog(comm):
        if comm.rank == 1:
            raise RuntimeError("boom")
        comm.allgather(1)

    with pytest.raises(RuntimeError, match="boom"):
        run_spmd(2, prog)


def test_single_rank():
    def prog(comm):
        assert comm.allgather(7) == [7]
        assert comm.bcast(3) == 3
        return comm.allreduce_sum(np.array([1.0]))[0]

    out = run_spmd(1, prog)
    assert out["results"] == [1.0]


def test_invalid_nprocs():
    with pytest.raises(CommunicatorError):
        run_spmd(0, lambda comm: None)


def test_recv_invalid_src():
    def prog(comm):
        if comm.rank == 0:
            comm.recv(7)

    with pytest.raises(CommunicatorError, match="invalid source"):
        run_spmd(2, prog)


def test_default_recv_timeout_is_finite():
    assert np.isfinite(DEFAULT_RECV_TIMEOUT)


def test_recv_times_out_instead_of_hanging():
    def prog(comm):
        if comm.rank == 1:
            comm.recv(0)  # rank 0 never sends

    start = time.perf_counter()
    with pytest.raises(CommTimeoutError) as ei:
        run_spmd(2, prog, recv_timeout=0.25)
    assert time.perf_counter() - start < 30.0
    assert (ei.value.src, ei.value.dst, ei.value.tag) == (0, 1, 0)
    assert ei.value.timeout == pytest.approx(0.25)


def test_recv_retries_charge_simulated_backoff():
    def prog(comm):
        if comm.rank != 0:
            return None
        try:
            comm.recv(1, timeout=0.05, max_retries=2, retry_backoff=0.5)
        except CommTimeoutError as exc:
            assert exc.retries == 2
            return comm.clock()
        raise AssertionError("recv should have timed out")

    out = run_spmd(2, prog)
    # two retry rounds with doubling backoff: 0.5 + 1.0 simulated seconds
    assert out["results"][0] == pytest.approx(1.5)


def test_collective_with_missing_participant_aborts():
    def prog(comm):
        if comm.rank == 0:
            comm.allgather(1)  # rank 1 never joins the collective

    with pytest.raises(CommunicatorError):
        run_spmd(2, prog, collective_timeout=0.3)
