"""Tests for the unified solver API: registry, SolverConfig, result schema."""

import json
import warnings

import numpy as np
import pytest

import repro.api.registry as registry_mod
from repro.api import (
    SOLVERS,
    SolverConfig,
    constructor_kwargs,
    get_spec,
    make_solver,
    registered_methods,
    resolve_method,
)
from repro.core import ILUT_CRTP, LU_CRTP, RandQB_EI, RandUBV
from repro.exceptions import UnknownSolverError
from repro.results import (
    RESULT_SCHEMA,
    LowRankApproximation,
    LUApproximation,
    QBApproximation,
)


@pytest.fixture
def A():
    from repro.matrices.generators import random_graded
    return random_graded(100, 100, nnz_per_row=6, decay_rate=7.0, seed=3)


# -- registry ---------------------------------------------------------------

def test_registered_methods_paper_order():
    assert registered_methods() == ["randqb", "ubv", "lu", "ilut"]


@pytest.mark.parametrize("alias,canonical", [
    ("randqb", "randqb"), ("randqb_ei", "randqb"), ("qb", "randqb"),
    ("QB", "randqb"), ("ubv", "ubv"), ("randubv", "ubv"),
    ("lu", "lu"), ("LU_CRTP", "lu"), ("ilut", "ilut"),
    ("ilut_crtp", "ilut"),
])
def test_alias_resolution(alias, canonical):
    assert resolve_method(alias) == canonical


def test_unknown_method_raises_value_error():
    with pytest.raises(UnknownSolverError):
        resolve_method("bogus")
    assert issubclass(UnknownSolverError, ValueError)


@pytest.mark.parametrize("name,cls", [
    ("randqb", RandQB_EI), ("ubv", RandUBV), ("lu", LU_CRTP),
    ("ilut", ILUT_CRTP),
])
def test_make_solver_all_methods(name, cls):
    solver = make_solver(name, SolverConfig(k=8, tol=1e-1))
    assert isinstance(solver, cls)
    assert solver.k == 8 and solver.tol == 1e-1


def test_make_solver_dropped_fields_per_method():
    cfg = SolverConfig(k=8, tol=1e-1, power=2, seed=7,
                       estimated_iterations=5)
    qb = make_solver("randqb", cfg)
    assert qb.power == 2 and qb.seed == 7
    lu = make_solver("lu", cfg)
    assert not hasattr(lu, "power")  # dropped silently
    il = make_solver("ilut", cfg)
    assert il.estimated_iterations == 5


def test_make_solver_extras_passthrough_and_validation():
    lu = make_solver("lu", SolverConfig(extras={"l_formula": "auto"}))
    assert lu.l_formula == "auto"
    with pytest.raises(ValueError, match="no option"):
        make_solver("ubv", SolverConfig(extras={"l_formula": "auto"}))


def test_make_solver_runtime_hooks_not_in_config():
    def hook(state):
        pass
    solver = make_solver("lu", SolverConfig(k=8), checkpoint_callback=hook)
    assert solver.checkpoint_callback is hook
    # ubv has no checkpoint support: the hook is dropped, not an error
    ubv = make_solver("ubv", SolverConfig(k=8), checkpoint_callback=hook)
    assert not hasattr(ubv, "checkpoint_callback")


def test_spec_metadata():
    assert get_spec("qb").label == "RandQB_EI"
    assert not get_spec("ubv").supports_checkpoint
    assert not get_spec("ilut").supports_spmd
    assert set(SOLVERS) == {"randqb", "ubv", "lu", "ilut"}


# -- deprecation shim -------------------------------------------------------

def test_legacy_kwargs_warn_once():
    registry_mod._warned_kwargs_shim = False
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        s1 = make_solver("lu", k=4, tol=1e-1, l_formula="auto")
        s2 = make_solver("randqb", k=4, tol=1e-1, power=2)
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1  # warns once per process
    assert s1.k == 4 and s1.l_formula == "auto"
    assert s2.power == 2


# -- SolverConfig -----------------------------------------------------------

def test_config_roundtrip():
    cfg = SolverConfig(k=8, tol=1e-3, power=2, seed=5,
                       estimated_iterations="auto", optimized=False,
                       checkpointing=True, max_rank=64,
                       extras={"mu": 1e-4})
    d = cfg.to_dict()
    assert d["extras"] == {"mu": 1e-4}
    assert SolverConfig.from_dict(d) == cfg
    assert SolverConfig.from_dict(json.loads(json.dumps(d))) == cfg


def test_config_frozen_and_hashable():
    cfg = SolverConfig()
    with pytest.raises(Exception):
        cfg.k = 5
    assert isinstance(hash(cfg), int)


@pytest.mark.parametrize("bad", [
    dict(k=0), dict(tol=0.0), dict(tol=-1.0), dict(power=4),
    dict(estimated_iterations=0), dict(estimated_iterations="soon"),
    dict(max_rank=0),
])
def test_config_validation(bad):
    with pytest.raises(ValueError):
        SolverConfig(**bad)


def test_config_from_dict_rejects_unknown():
    with pytest.raises(ValueError, match="unknown SolverConfig"):
        SolverConfig.from_dict({"block_size": 8})


def test_cache_key_excludes_non_identity_fields():
    base = SolverConfig(k=8, tol=1e-2)
    assert base.cache_key() == base.replace(tol=1e-5).cache_key()
    assert base.cache_key() == base.replace(optimized=False).cache_key()
    assert base.cache_key() == base.replace(checkpointing=True).cache_key()
    assert base.cache_key() != base.replace(k=16).cache_key()
    assert base.cache_key() != base.replace(seed=1).cache_key()
    assert base.cache_key() != base.replace(
        extras={"l_formula": "auto"}).cache_key()


def test_constructor_kwargs_filters_by_dataclass_fields():
    cfg = SolverConfig(k=8, power=3, seed=11)
    kw = constructor_kwargs(LU_CRTP, cfg)
    assert "power" not in kw and "seed" not in kw and kw["k"] == 8
    kw = constructor_kwargs(RandQB_EI, cfg)
    assert kw["power"] == 3 and kw["seed"] == 11


# -- result JSON schema -----------------------------------------------------

def _roundtrip(res):
    payload = json.loads(json.dumps(res.to_json()))
    back = LowRankApproximation.from_json(payload)
    assert type(back) is type(res)
    assert back.rank == res.rank
    assert back.iterations == res.iterations
    assert back.converged == res.converged
    assert back.factor_nnz() == res.factor_nnz()
    assert back.elapsed == pytest.approx(res.elapsed)
    assert back.history.indicators == pytest.approx(res.history.indicators)
    return payload, back


def test_qb_result_json_roundtrip(A):
    res = make_solver("randqb", SolverConfig(k=8, tol=1e-1)).solve(A)
    payload, back = _roundtrip(res)
    assert payload["schema"] == RESULT_SCHEMA
    assert payload["kind"] == "qb"
    assert isinstance(back, QBApproximation)
    assert back.is_summary_only() and back.Q is None


def test_ubv_result_json_roundtrip(A):
    res = make_solver("ubv", SolverConfig(k=8, tol=1e-1)).solve(A)
    payload, _ = _roundtrip(res)
    assert payload["kind"] == "ubv"


def test_lu_result_json_roundtrip(A):
    res = make_solver("ilut", SolverConfig(
        k=8, tol=1e-1, estimated_iterations=4)).solve(A)
    payload, back = _roundtrip(res)
    assert payload["kind"] == "lu"
    assert isinstance(back, LUApproximation)
    assert back.threshold == pytest.approx(res.threshold)
    assert back.dropped_norm == pytest.approx(res.dropped_norm)


def test_result_json_indicator_trajectory(A):
    res = make_solver("randqb", SolverConfig(k=8, tol=1e-1)).solve(A)
    hist = res.to_json()["history"]
    assert len(hist) == res.iterations
    assert [h["indicator"] for h in hist] == res.history.indicators
    assert res.to_json(include_history=False).get("history") is None


def test_result_json_unknown_schema_rejected():
    with pytest.raises(ValueError, match="unsupported result schema"):
        LowRankApproximation.from_json({"schema": "repro.result/v99"})


def test_saved_npz_meta_is_schema(tmp_path, A):
    """save_result archives carry the versioned schema as metadata."""
    from repro.serialize import load_result, save_result
    res = make_solver("lu", SolverConfig(k=8, tol=1e-1)).solve(A)
    path = tmp_path / "r.npz"
    save_result(res, path)
    with np.load(path, allow_pickle=False) as z:
        meta = json.loads(bytes(z["_meta"]).decode())
    assert meta["schema"] == RESULT_SCHEMA
    assert meta["factor_nnz"] == res.factor_nnz()
    loaded = load_result(path)
    assert loaded.rank == res.rank
    assert loaded.factor_nnz() == res.factor_nnz()


def test_cli_table_uses_schema(A, capsys):
    """compare's table values come from the same to_json consumers use."""
    from repro.cli import _summary_row
    res = make_solver("randqb", SolverConfig(k=8, tol=1e-1)).solve(A)
    row = _summary_row("x", res)
    d = res.to_json()
    assert row[1] == d["rank"] and row[2] == d["iterations"]
    assert row[4] == d["factor_nnz"]
