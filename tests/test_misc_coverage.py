"""Edge-case coverage for small paths not exercised elsewhere."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis.tables import render_table
from repro.history import ConvergenceHistory, IterationRecord
from repro.results import QBApproximation


def test_error_on_zero_matrix():
    res = QBApproximation(rank=0, tolerance=1e-2, indicator=0.0, a_fro=0.0,
                          converged=True, Q=np.zeros((4, 0)),
                          B=np.zeros((0, 4)))
    assert res.error(sp.csc_matrix((4, 4))) == 0.0


def test_history_densities_property():
    h = ConvergenceHistory()
    h.append(IterationRecord(iteration=1, rank=4, indicator=1.0,
                             schur_nnz=8, schur_shape=(4, 4)))
    h.append(IterationRecord(iteration=2, rank=8, indicator=0.5,
                             schur_nnz=2, schur_shape=(2, 2)))
    assert h.densities == [0.5, 0.5]


def test_render_table_empty_rows():
    txt = render_table(["a", "b"], [])
    assert "a" in txt and "b" in txt


def test_suite_entry_fields():
    from repro.matrices.suite import suite_entries
    e = suite_entries()[0]
    assert e.label == "M1"
    assert e.paper_size > e.paper_nnz // 100
    assert callable(e.builder)


def test_qrcp_empty_matrix():
    from repro.linalg.qrcp import qrcp
    Q, R, piv = qrcp(np.zeros((5, 0)))
    assert R.shape == (0, 0)
    assert piv.size == 0


def test_spectral_summary_empty():
    from repro.matrices.spectra import spectrum_summary
    d = spectrum_summary(np.zeros(0))
    assert d["sigma_max"] == 0.0


def test_convergence_history_getitem_negative():
    h = ConvergenceHistory()
    h.append(IterationRecord(iteration=1, rank=4, indicator=1.0))
    assert h[-1].rank == 4


def test_machine_repr_frozen():
    from repro.parallel.machine import MachineModel
    m = MachineModel()
    with pytest.raises(Exception):
        m.alpha = 1.0  # frozen dataclass


def test_selection_result_winners_prefix():
    from repro.pivoting.select import select_columns
    B = sp.csc_matrix(np.diag([5.0, 1.0, 3.0]))
    sel = select_columns(B, 2)
    np.testing.assert_array_equal(sel.winners, sel.order[:2])


def test_qr_tp_dense_input():
    from repro.pivoting.tournament import qr_tp
    rng = np.random.default_rng(0)
    A = rng.standard_normal((10, 12))
    res = qr_tp(A, 3)
    assert res.winners.size == 3


def test_ubv_right_property(small_sparse):
    from repro import randubv
    res = randubv(small_sparse, k=8, tol=1e-1)
    W = res.right
    assert W.shape == (res.Bmat.shape[0], 60)
    np.testing.assert_allclose(res.left @ W, res.reconstruct(), atol=1e-10)


def test_fillin_tracker_growth_empty_start():
    from repro.sparse.fillin import FillInTracker
    t = FillInTracker.for_matrix(sp.csc_matrix((3, 3)))
    assert t.max_nnz_ratio == 0.0


def test_cli_scaling_includes_ubv(capsys):
    from repro.cli import main
    code = main(["scaling", "M4", "--scale", "0.2", "-k", "8",
                 "--tol", "1e-1", "--nprocs", "1,4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "RandUBV" in out


def test_perfmodel_single_proc_no_comm(small_sparse):
    """At P=1 every collective is free: total time is pure compute."""
    from repro import lu_crtp
    from repro.parallel import simulate_lu_crtp
    from repro.parallel.machine import MachineModel
    res = lu_crtp(small_sparse, k=8, tol=1e-1)
    zero_comm = MachineModel(alpha=0.0, beta=0.0)
    t_model = simulate_lu_crtp(res, 1, machine=zero_comm).total_seconds
    t_default = simulate_lu_crtp(res, 1).total_seconds
    assert t_model == pytest.approx(t_default, rel=1e-6)
