"""Tests for repro.sparse.trisolve and repro.core.apply."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import ilut_crtp, lu_crtp, randqb_ei, randubv
from repro.core.apply import (
    as_preconditioner,
    pseudo_solve,
    unit_lower_apply_inverse,
)
from repro.exceptions import ReproError
from repro.sparse.trisolve import (
    block_upper_solve,
    sparse_lower_solve,
    sparse_upper_solve,
)


# ---------------------------------------------------------------- trisolve
def lower_tri(rng, n=12, density=0.4):
    A = sp.random(n, n, density=density, random_state=rng,
                  data_rvs=rng.standard_normal).toarray()
    L = np.tril(A, k=-1) + np.diag(2.0 + rng.random(n))
    return sp.csc_matrix(L)


def test_sparse_lower_solve(rng):
    L = lower_tri(rng)
    b = rng.standard_normal(12)
    x = sparse_lower_solve(L, b)
    np.testing.assert_allclose(L @ x, b, atol=1e-10)


def test_sparse_lower_solve_block_rhs(rng):
    L = lower_tri(rng)
    B = rng.standard_normal((12, 4))
    X = sparse_lower_solve(L, B)
    np.testing.assert_allclose(L @ X, B, atol=1e-10)


def test_sparse_lower_unit_diagonal(rng):
    Ld = np.tril(rng.standard_normal((8, 8)), k=-1) + np.eye(8)
    L = sp.csc_matrix(Ld)
    b = rng.standard_normal(8)
    x = sparse_lower_solve(L, b, unit_diagonal=True)
    np.testing.assert_allclose(Ld @ x, b, atol=1e-10)


def test_sparse_upper_solve(rng):
    U = lower_tri(rng).T.tocsc()
    b = rng.standard_normal(12)
    x = sparse_upper_solve(U, b)
    np.testing.assert_allclose(U @ x, b, atol=1e-10)


def test_zero_diagonal_raises(rng):
    L = sp.csc_matrix(np.tril(rng.standard_normal((5, 5)), k=-1))
    with pytest.raises(ReproError):
        sparse_lower_solve(L, np.ones(5))


def test_nonsquare_raises():
    with pytest.raises(ValueError):
        sparse_lower_solve(sp.csc_matrix((3, 4)), np.ones(3))


def test_block_upper_solve(rng):
    # block upper triangular with dense 3x3 diagonal blocks
    n, blk = 9, 3
    D = np.triu(rng.standard_normal((n, n)))
    for s in range(0, n, blk):
        D[s:s + blk, s:s + blk] = rng.standard_normal((blk, blk)) \
            + 4 * np.eye(blk)
    U = sp.csc_matrix(D)
    b = rng.standard_normal(n)
    x = block_upper_solve(U, b, block=blk)
    np.testing.assert_allclose(D @ x, b, atol=1e-9)


def test_block_upper_singular_raises(rng):
    U = sp.csc_matrix(np.zeros((4, 4)))
    with pytest.raises(ReproError):
        block_upper_solve(U, np.ones(4), block=2)


# ------------------------------------------------------------------- apply
def test_qb_pseudo_solve_consistent(rank_deficient):
    res = randqb_ei(rank_deficient, k=4, tol=1e-8,
                    allow_unsafe_tolerance=True)
    rng = np.random.default_rng(5)
    x_true = rng.standard_normal(50)
    b = rank_deficient @ x_true
    x = pseudo_solve(res, np.asarray(b))
    np.testing.assert_allclose(rank_deficient @ x, b, atol=1e-5)


def test_ubv_pseudo_solve_consistent(rank_deficient):
    res = randubv(rank_deficient, k=4, tol=1e-6, allow_unsafe_tolerance=True)
    rng = np.random.default_rng(6)
    b = rank_deficient @ rng.standard_normal(50)
    x = pseudo_solve(res, np.asarray(b))
    np.testing.assert_allclose(rank_deficient @ x, b, atol=1e-4)


def test_lu_pseudo_solve_consistent(rank_deficient):
    res = lu_crtp(rank_deficient, k=4, tol=1e-10)
    rng = np.random.default_rng(7)
    b = np.asarray(rank_deficient @ rng.standard_normal(50))
    x = pseudo_solve(res, b)
    resid = np.linalg.norm(rank_deficient @ x - b) / np.linalg.norm(b)
    assert resid < 1e-6


def test_lu_pseudo_solve_truncated(small_sparse):
    """On a truncated factorization, the solve residual is bounded by the
    truncation level (preconditioner quality)."""
    res = ilut_crtp(small_sparse, k=8, tol=1e-3, estimated_iterations=6)
    rng = np.random.default_rng(8)
    b = np.asarray(small_sparse @ rng.standard_normal(60))
    x = pseudo_solve(res, b)
    resid = np.linalg.norm(small_sparse @ x - b) / np.linalg.norm(b)
    assert resid < 0.2


def test_preconditioner_operator(small_sparse):
    res = lu_crtp(small_sparse, k=8, tol=1e-4)
    M = as_preconditioner(res)
    b = np.ones(60)
    y = M @ b
    assert y.shape == (60,)
    assert np.all(np.isfinite(y))


def test_preconditioner_accelerates_identity_limit(rank_deficient):
    """On a (nearly) exactly factorized matrix, M^{-1} A ~ projector: the
    residual after one application collapses."""
    res = lu_crtp(rank_deficient, k=4, tol=1e-10)
    M = as_preconditioner(res)
    rng = np.random.default_rng(9)
    x_true = np.asarray(rank_deficient @ rng.standard_normal(50))
    x = M @ np.asarray(rank_deficient @ x_true)
    np.testing.assert_allclose(rank_deficient @ x,
                               rank_deficient @ x_true, atol=1e-5)


def test_unit_lower_apply_inverse(small_sparse):
    res = lu_crtp(small_sparse, k=8, tol=1e-2)
    b = np.ones(60)
    y = unit_lower_apply_inverse(res, b)
    K = res.rank
    L1 = res.L.tocsc()[:K, :K]
    np.testing.assert_allclose(L1 @ y, b[:K], atol=1e-9)


def test_pseudo_solve_unknown_type():
    with pytest.raises(TypeError):
        pseudo_solve(object(), np.ones(3))


def test_preconditioner_rmatvec_is_transpose(rank_deficient, rng):
    """<M b, x> == <b, M^T x> — the adjoint identity for the operator."""
    res = lu_crtp(rank_deficient, k=4, tol=1e-10)
    M = as_preconditioner(res)
    b = rng.standard_normal(50)
    x = rng.standard_normal(50)
    lhs = float((M @ b) @ x)
    rhs = float(b @ (M.T @ x))
    assert lhs == pytest.approx(rhs, rel=1e-6, abs=1e-9)
