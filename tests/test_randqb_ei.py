"""Tests for repro.core.randqb_ei (Algorithm 1)."""

import numpy as np
import pytest

from repro import RandQB_EI, randqb_ei
from repro.exceptions import ToleranceTooSmallError


def test_converges_and_indicator_is_exact(small_sparse):
    res = randqb_ei(small_sparse, k=8, tol=1e-2)
    assert res.converged
    assert res.relative_indicator() < 1e-2
    # indicator (4) equals the true Frobenius error
    assert res.error(small_sparse) == pytest.approx(
        res.relative_indicator(), rel=1e-6)


def test_rank_is_multiple_of_block(small_sparse):
    res = randqb_ei(small_sparse, k=8, tol=1e-2)
    assert res.rank % 8 == 0
    assert res.rank == res.iterations * 8


def test_q_orthonormal(small_sparse):
    res = randqb_ei(small_sparse, k=8, tol=1e-2)
    assert res.orthogonality_defect() < 1e-10


def test_b_equals_qta(small_sparse):
    res = randqb_ei(small_sparse, k=8, tol=1e-2)
    np.testing.assert_allclose(res.B, res.Q.T @ small_sparse.toarray(),
                               atol=1e-8)


def test_power_scheme_reduces_iterations(rng):
    """p >= 1 needs at most as many iterations as p = 0 (Table II trend)."""
    from repro.matrices.generators import random_graded
    A = random_graded(150, 150, nnz_per_row=8, decay_rate=3.0, seed=1)
    its = {}
    for p in (0, 1, 2):
        its[p] = randqb_ei(A, k=8, tol=1e-2, power=p).iterations
    assert its[1] <= its[0]
    assert its[2] <= its[1] + 1  # p=2 may tie p=1


def test_history_indicator_monotone(small_sparse):
    res = randqb_ei(small_sparse, k=4, tol=1e-2)
    ind = res.history.indicators
    assert all(a >= b - 1e-9 for a, b in zip(ind, ind[1:]))


def test_seed_reproducibility(small_sparse):
    r1 = randqb_ei(small_sparse, k=8, tol=1e-2, seed=11)
    r2 = randqb_ei(small_sparse, k=8, tol=1e-2, seed=11)
    np.testing.assert_array_equal(r1.Q, r2.Q)
    r3 = randqb_ei(small_sparse, k=8, tol=1e-2, seed=12)
    assert not np.array_equal(r1.Q, r3.Q)


def test_dense_input(rng):
    A = rng.standard_normal((40, 30)) @ np.diag(np.logspace(0, -4, 30))
    res = randqb_ei(A, k=5, tol=1e-2)
    assert res.converged
    assert res.error(A) < 1e-2


def test_rectangular_both_ways(rng):
    from repro.matrices.generators import random_graded
    for shape in ((100, 40), (40, 100)):
        A = random_graded(*shape, nnz_per_row=5, decay_rate=5.0, seed=2)
        res = randqb_ei(A, k=6, tol=1e-2)
        assert res.converged
        assert res.Q.shape[0] == shape[0]
        assert res.B.shape[1] == shape[1]


def test_tolerance_floor_enforced(small_sparse):
    with pytest.raises(ToleranceTooSmallError):
        randqb_ei(small_sparse, k=8, tol=1e-9)
    res = randqb_ei(small_sparse, k=8, tol=1e-9,
                    allow_unsafe_tolerance=True, max_rank=16)
    assert not res.converged


def test_max_rank_cap(small_sparse):
    res = randqb_ei(small_sparse, k=8, tol=1e-6, max_rank=16)
    assert res.rank <= 16
    assert not res.converged


def test_raise_on_failure(small_sparse):
    from repro.exceptions import ConvergenceError
    with pytest.raises(ConvergenceError):
        randqb_ei(small_sparse, k=8, tol=1e-6, max_rank=8,
                  raise_on_failure=True)


def test_rank_never_exceeds_min_dim(rank_deficient):
    res = randqb_ei(rank_deficient, k=16, tol=1e-3)
    assert res.rank <= 50
    assert res.converged


def test_to_svd(small_sparse):
    res = randqb_ei(small_sparse, k=8, tol=1e-2)
    U, s, Vt = res.to_svd()
    approx = (U * s) @ Vt
    np.testing.assert_allclose(approx, res.Q @ res.B, atol=1e-8)
    assert np.all(np.diff(s) <= 1e-12)


def test_invalid_params():
    with pytest.raises(ValueError):
        RandQB_EI(k=0)
    with pytest.raises(ValueError):
        RandQB_EI(power=5)


def test_sparse_sign_sketch(small_sparse):
    res = randqb_ei(small_sparse, k=8, tol=1e-2, sketch="sparse_sign")
    assert res.converged
    assert res.error(small_sparse) < 1e-2


def test_apply_matches_reconstruct(small_sparse, rng):
    res = randqb_ei(small_sparse, k=8, tol=1e-2)
    x = rng.standard_normal(60)
    np.testing.assert_allclose(res.apply(x), res.reconstruct() @ x,
                               atol=1e-8)
