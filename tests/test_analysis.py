"""Tests for repro.analysis (error, minrank, edf, tables, complexity)."""

import numpy as np
import pytest

from repro.analysis.complexity import (
    lu_crtp_flops,
    lu_faster_than_randqb,
    predicted_crossover_fill,
    randqb_ei_flops,
    randubv_flops,
)
from repro.analysis.edf import edf, edf_quantiles, fraction_above
from repro.analysis.error import (
    correct_digits,
    exact_error,
    nnz_ratio,
    runtime_per_digit,
)
from repro.analysis.minrank import approx_minimum_rank_curve, minimum_rank_curve
from repro.analysis.tables import format_cell, format_sci, render_table


def test_correct_digits():
    assert correct_digits(1e-3) == pytest.approx(3.0)
    assert correct_digits(0.0) == np.inf


def test_runtime_per_digit():
    assert runtime_per_digit(6.0, 1e-3) == pytest.approx(2.0)
    assert runtime_per_digit(6.0, 1.0) == np.inf


def test_exact_error_and_nnz_ratio(small_sparse):
    from repro import ilut_crtp, lu_crtp
    lu = lu_crtp(small_sparse, k=8, tol=1e-2)
    il = ilut_crtp(small_sparse, k=8, tol=1e-2, estimated_iterations=4)
    assert exact_error(lu, small_sparse) < 1e-2
    r = nnz_ratio(lu, il)
    assert r > 0


def test_minimum_rank_curve_monotone(small_sparse):
    curve = minimum_rank_curve(small_sparse, [1e-1, 1e-2, 1e-3])
    assert curve[1e-1] <= curve[1e-2] <= curve[1e-3]


def test_approx_minrank_close_to_exact(small_sparse):
    """Fig. 2's claim: the RandQB_EI-based approximation tracks the exact
    minimum rank reasonably."""
    tols = [1e-1, 1e-2]
    exact = minimum_rank_curve(small_sparse, tols)
    approx = approx_minimum_rank_curve(small_sparse, tols, k=8, power=2)
    for tol in tols:
        assert abs(approx[tol] - exact[tol]) <= max(4, 0.4 * exact[tol])
        assert approx[tol] >= exact[tol] - 1  # can't beat Eckart-Young


def test_edf():
    fr, v = edf([3.0, 1.0, 2.0])
    np.testing.assert_allclose(v, [1.0, 2.0, 3.0])
    np.testing.assert_allclose(fr, [1 / 3, 2 / 3, 1.0])
    fr0, v0 = edf([])
    assert fr0.size == 0


def test_edf_quantiles():
    q = edf_quantiles(np.arange(101, dtype=float))
    assert q[0.5] == pytest.approx(50.0)


def test_fraction_above():
    assert fraction_above([1.0, 2.0, 3.0, 4.0], 2.5) == pytest.approx(0.5)
    assert fraction_above([], 1.0) == 0.0


def test_format_sci():
    assert format_sci(3.3e5) == "3.3e5"
    assert format_sci(0) == "0"
    assert format_sci(float("nan")) == "-"
    assert format_sci(-1.5e-7) == "-1.5e-7"


def test_format_cell():
    assert format_cell(None) == "-"
    assert format_cell(12) == "12"
    assert format_cell("x") == "x"
    assert format_cell(1.23456) == "1.23"
    assert format_cell(1.2e9) == "1.2e9"


def test_render_table_alignment():
    txt = render_table(["a", "bbb"], [[1, 2.5], [333, None]], title="T")
    lines = txt.splitlines()
    assert lines[0] == "T"
    assert "bbb" in lines[1]
    assert all(len(ln) == len(lines[1]) for ln in lines[3:])


def test_complexity_formulas_positive():
    assert randqb_ei_flops(100, 100, 1000, 32, 4, p=1) > \
        randqb_ei_flops(100, 100, 1000, 32, 4, p=0)
    assert randubv_flops(100, 100, 1000, 32, 4) > 0
    assert lu_crtp_flops(8, 5000, 4) > 0


def test_crossover_predicate():
    # Section IV: the bound grows with ibar*k; for long runs without fill LU
    # wins, catastrophic fill always hands the win to RandQB
    nnz_a = 10000
    assert lu_faster_than_randqb(nnz_a, nnz_a, t=10, k=8, ibar=100)
    assert not lu_faster_than_randqb(1000 * nnz_a, nnz_a, t=10, k=8,
                                     ibar=100)
    # short runs with small k: even modest fill loses (bound < nnz(A))
    assert not lu_faster_than_randqb(nnz_a, nnz_a, t=10, k=8, ibar=4)


def test_crossover_fill_grows_with_p():
    f0 = predicted_crossover_fill(10000, 10, 8, 4, p=0)
    f1 = predicted_crossover_fill(10000, 10, 8, 4, p=1)
    assert f1 == pytest.approx(2 * f0)
