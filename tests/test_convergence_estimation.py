"""Tests for repro.analysis.convergence (iteration prediction, decay)."""

import numpy as np
import pytest

from repro import ILUT_CRTP, lu_crtp, randqb_ei
from repro.analysis.convergence import (
    decay_rate,
    effective_rank_with_residual,
    estimate_iterations,
    iterations_to_reach,
)


@pytest.fixture(scope="module")
def A_fast():
    from repro.matrices.generators import random_graded
    return random_graded(250, 250, nnz_per_row=10, decay_rate=9.0,
                         value_spread=1.0, seed=12)


def test_prediction_matches_lu_iterations(A_fast):
    lu = lu_crtp(A_fast, k=16, tol=1e-2)
    pred = estimate_iterations(A_fast, 16, 1e-2)
    assert abs(pred - lu.iterations) <= max(2, 0.5 * lu.iterations)


def test_prediction_matches_randqb_iterations(A_fast):
    qb = randqb_ei(A_fast, k=16, tol=1e-2, power=1)
    pred = estimate_iterations(A_fast, 16, 1e-2)
    assert abs(pred - qb.iterations) <= max(2, 0.5 * qb.iterations)


def test_prediction_scales_with_k(A_fast):
    p8 = estimate_iterations(A_fast, 8, 1e-2)
    p32 = estimate_iterations(A_fast, 32, 1e-2)
    assert p8 > p32


def test_prediction_grows_with_tighter_tol(A_fast):
    loose = estimate_iterations(A_fast, 16, 1e-1)
    tight = estimate_iterations(A_fast, 16, 1e-3)
    assert tight >= loose


def test_extrapolation_path(A_fast):
    """Tolerance below the probe's resolution exercises the geometric
    tail extrapolation."""
    pred = estimate_iterations(A_fast, 16, 1e-4, probe_tol=1e-1)
    assert 1 <= pred <= 250 / 16 + 2


def test_auto_ilut_end_to_end(A_fast):
    lu = lu_crtp(A_fast, k=16, tol=1e-2)
    auto = ILUT_CRTP(k=16, tol=1e-2,
                     estimated_iterations="auto").solve(A_fast)
    assert auto.converged
    assert auto.error(A_fast) < 1e-2
    # thresholding actually effective with the predicted u
    assert auto.factor_nnz() < lu.factor_nnz()
    assert not auto.control_triggered


def test_effective_rank_with_residual():
    s = np.array([10.0, 1.0, 0.1])
    a_fro = np.sqrt(np.sum(s ** 2) + 0.01)  # residual mass 0.1^2
    r = effective_rank_with_residual(s, residual=0.1, a_fro=a_fro, tol=0.05)
    assert r == 2  # tail {0.1} + residual 0.1 -> 0.141 < 0.05*10.05? no ->
    # recompute: target = 0.05*10.05 = 0.502; tail at r=2 is
    # sqrt(0.1^2 + 0.1^2) = 0.141 < 0.502 -> r=2; at r=1: sqrt(1.01+0.01)
    # = 1.01 > 0.502


def test_decay_rate_geometric():
    from repro.history import ConvergenceHistory, IterationRecord
    h = ConvergenceHistory()
    for i, ind in enumerate([1.0, 0.5, 0.25, 0.125]):
        h.append(IterationRecord(iteration=i + 1, rank=4 * (i + 1),
                                 indicator=ind))
    assert decay_rate(h) == pytest.approx(0.5, rel=1e-6)


def test_iterations_to_reach():
    from repro.history import ConvergenceHistory, IterationRecord
    h = ConvergenceHistory()
    for i, ind in enumerate([1.0, 0.5, 0.25]):
        h.append(IterationRecord(iteration=i + 1, rank=4, indicator=ind))
    assert iterations_to_reach(h, 0.25 / 8) == 3
    assert iterations_to_reach(h, 1.0) == 0


def test_iterations_to_reach_stalled():
    from repro.history import ConvergenceHistory, IterationRecord
    h = ConvergenceHistory()
    for i in range(3):
        h.append(IterationRecord(iteration=i + 1, rank=4, indicator=1.0))
    assert iterations_to_reach(h, 0.1) >= int(1e8)


def test_decay_rate_degenerate():
    from repro.history import ConvergenceHistory
    assert decay_rate(ConvergenceHistory()) == 1.0
