"""Tests for repro.parallel.spmd — executable parallel solvers vs sequential."""

import numpy as np
import pytest

from repro import lu_crtp, randqb_ei
from repro.parallel.comm import run_spmd
from repro.parallel.spmd import spmd_lu_crtp, spmd_randqb_ei


@pytest.fixture
def A120():
    from repro.matrices.generators import random_graded
    return random_graded(120, 120, nnz_per_row=7, decay_rate=7.0, seed=21)


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_spmd_randqb_matches_sequential_rank(A120, nprocs):
    seq = randqb_ei(A120, k=8, tol=1e-2, seed=0)
    out = run_spmd(nprocs, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0)
    Qloc, B, K, conv = out["results"][0]
    assert conv
    assert K == seq.rank  # same RNG stream -> same iteration count


def test_spmd_randqb_factorization_quality(A120):
    out = run_spmd(4, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0)
    Q = np.vstack([r[0] for r in out["results"]])
    B = out["results"][0][1]
    err = np.linalg.norm(A120.toarray() - Q @ B) / np.linalg.norm(
        A120.toarray())
    assert err < 1e-2
    assert np.linalg.norm(Q.T @ Q - np.eye(Q.shape[1])) < 1e-8


def test_spmd_randqb_b_replicated(A120):
    out = run_spmd(3, spmd_randqb_ei, A120, k=8, tol=1e-1, seed=0)
    B0 = out["results"][0][1]
    for r in out["results"][1:]:
        np.testing.assert_allclose(r[1], B0, atol=1e-12)


def test_spmd_randqb_power(A120):
    out = run_spmd(2, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0, power=1)
    Q = np.vstack([r[0] for r in out["results"]])
    B = out["results"][0][1]
    err = np.linalg.norm(A120.toarray() - Q @ B) / np.linalg.norm(
        A120.toarray())
    assert err < 1e-2


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_spmd_lu_converges(A120, nprocs):
    out = run_spmd(nprocs, spmd_lu_crtp, A120, k=8, tol=1e-2)
    K, conv, rel = out["results"][0]
    assert conv
    assert rel < 1e-2
    # all ranks agree
    for r in out["results"]:
        assert r == out["results"][0]


def test_spmd_lu_rank_close_to_sequential(A120):
    seq = lu_crtp(A120, k=8, tol=1e-2, use_colamd=False)
    out = run_spmd(4, spmd_lu_crtp, A120, k=8, tol=1e-2)
    K, conv, _ = out["results"][0]
    # different leaf boundaries can shift pivots; ranks stay within a block
    # or two of the sequential run
    assert abs(K - seq.rank) <= 2 * 8


def test_spmd_lu_with_threshold(A120):
    out = run_spmd(2, spmd_lu_crtp, A120, k=8, tol=1e-2, threshold=1e-6)
    K, conv, rel = out["results"][0]
    assert conv
    assert rel < 1e-2


def test_spmd_clock_positive(A120):
    out = run_spmd(2, spmd_lu_crtp, A120, k=8, tol=1e-1)
    assert out["elapsed"] > 0
    assert out["kernel_seconds"]  # at least one kernel attributed
