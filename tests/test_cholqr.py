"""Tests for repro.linalg.cholqr (CholeskyQR family)."""

import numpy as np

from repro.linalg.cholqr import cholqr, cholqr2, gram_r_factor


def test_gram_r_factor_matches_qr(rng):
    B = rng.standard_normal((50, 8))
    R, clean = gram_r_factor(B)
    assert clean
    _, Rref = np.linalg.qr(B)
    np.testing.assert_allclose(R.T @ R, B.T @ B, rtol=1e-10)
    np.testing.assert_allclose(np.abs(np.diag(R)), np.abs(np.diag(Rref)),
                               rtol=1e-8)


def test_gram_r_factor_sparse(tall_sparse):
    R, clean = gram_r_factor(tall_sparse)
    assert clean
    G = (tall_sparse.T @ tall_sparse).toarray()
    np.testing.assert_allclose(R.T @ R, G, rtol=1e-10, atol=1e-12)


def test_gram_r_factor_rank_deficient_fallback(rng):
    B = rng.standard_normal((30, 4)) @ rng.standard_normal((4, 8))
    R, clean = gram_r_factor(B)
    assert not clean
    # diag floored, triangular solves stay finite
    assert np.all(np.abs(np.diag(R)) > 0)


def test_gram_r_factor_empty():
    R, clean = gram_r_factor(np.zeros((5, 0)))
    assert R.shape == (0, 0)
    assert clean


def test_cholqr_orthogonal(rng):
    B = rng.standard_normal((60, 6))
    Q, R, clean = cholqr(B)
    assert clean
    np.testing.assert_allclose(Q @ R, B, atol=1e-10)
    assert np.linalg.norm(Q.T @ Q - np.eye(6)) < 1e-8


def test_cholqr2_tighter_orthogonality(rng):
    # moderately ill-conditioned: single-pass degrades, two passes fix it
    U, _ = np.linalg.qr(rng.standard_normal((200, 10)))
    B = U @ np.diag(np.logspace(0, -6, 10))
    Q1, _, _ = cholqr(B)
    Q2, R2, clean = cholqr2(B)
    assert clean
    d1 = np.linalg.norm(Q1.T @ Q1 - np.eye(10))
    d2 = np.linalg.norm(Q2.T @ Q2 - np.eye(10))
    assert d2 < 1e-12
    assert d2 <= d1
    np.testing.assert_allclose(Q2 @ R2, B, atol=1e-9)


def test_cholqr2_sparse_input(tall_sparse):
    Q, R, clean = cholqr2(tall_sparse)
    np.testing.assert_allclose(Q @ R, tall_sparse.toarray(), atol=1e-9)
    assert np.linalg.norm(Q.T @ Q - np.eye(Q.shape[1])) < 1e-10


def test_cholqr2_rank_deficient_falls_back(rank_deficient):
    # 50x50 rank-12: Gram route must break down, dense fallback kicks in
    Q, R, clean = cholqr2(rank_deficient[:, :20])
    assert not clean
    np.testing.assert_allclose(Q @ R, rank_deficient[:, :20].toarray(),
                               atol=1e-9)


def test_cholqr_zero_width():
    Q, R, clean = cholqr(np.zeros((7, 0)))
    assert Q.shape == (7, 0)
    assert R.shape == (0, 0)
