"""Rank respawn-from-checkpoint in the procs backend (survivable SPMD).

The acceptance criterion under test: a seeded ``RankCrash`` at P=4 with
``max_rank_restarts > 0`` no longer kills the run — the parent quiesces
the survivors, respawns the dead rank, and resumes every rank from the
last durable checkpoint, producing factors *bitwise identical* to a
fault-free run of the same program.  Also covered: scratch restarts
(no checkpoint on disk yet), multi-round recovery, the restart budget,
non-crash errors staying fatal, the threads-backend guard, and the two
satellite fixes (atomic checkpoint writes, the shm atexit registry).
"""

import numpy as np
import pytest

from repro.exceptions import CheckpointError, CommunicatorError, RankFailure
from repro.parallel.comm import run_spmd
from repro.parallel.faults import FaultPlan, MessageDrop, RankCrash
from repro.parallel.shm import (
    SharedMatrix,
    cleanup_owned,
    shm_segments,
)
from repro.parallel.spmd import spmd_lu_crtp, spmd_randqb_ei
from repro.serialize import load_checkpoint, save_checkpoint


@pytest.fixture
def A120():
    from repro.matrices.generators import random_graded
    return random_graded(120, 120, nnz_per_row=7, decay_rate=7.0, seed=21)


def _assert_results_bitwise(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert len(ra) == len(rb)
        for xa, xb in zip(ra, rb):
            if isinstance(xa, np.ndarray):
                assert np.array_equal(xa, xb)
            else:
                assert xa == xb


# ---------------------------------------------------------------------------
# Acceptance: crash → respawn → resume → bitwise-identical factors
# ---------------------------------------------------------------------------

def test_respawn_resumes_bitwise_identical_randqb(A120, tmp_path):
    clean = run_spmd(4, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0,
                     backend="procs")
    plan = FaultPlan([RankCrash(rank=1, superstep=40)], seed=0)
    out = run_spmd(4, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0,
                   backend="procs", fault_plan=plan,
                   checkpoint_path=str(tmp_path / "qb.ckpt.npz"),
                   max_rank_restarts=2, recv_timeout=5.0,
                   collective_timeout=20.0)
    assert out["restarts"] == 1
    _assert_results_bitwise(clean["results"], out["results"])
    assert shm_segments() == []


def test_respawn_resumes_bitwise_identical_lu(A120, tmp_path):
    clean = run_spmd(4, spmd_lu_crtp, A120, k=8, tol=1e-2, backend="procs")
    plan = FaultPlan([RankCrash(rank=1, superstep=60)], seed=0)
    out = run_spmd(4, spmd_lu_crtp, A120, k=8, tol=1e-2, backend="procs",
                   fault_plan=plan,
                   checkpoint_path=str(tmp_path / "lu.ckpt.npz"),
                   max_rank_restarts=2, recv_timeout=5.0,
                   collective_timeout=20.0)
    assert out["restarts"] == 1
    _assert_results_bitwise(clean["results"], out["results"])
    K, conv, rel = out["results"][0]
    assert conv and rel < 1e-2


def test_respawn_without_checkpoint_restarts_from_scratch(A120):
    """No checkpoint on disk: the cohort restarts the program from the
    top, which is still deterministic → still bitwise identical."""
    clean = run_spmd(4, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0,
                     backend="procs")
    plan = FaultPlan([RankCrash(rank=2, superstep=10)], seed=0)
    out = run_spmd(4, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0,
                   backend="procs", fault_plan=plan, max_rank_restarts=1,
                   recv_timeout=5.0, collective_timeout=20.0)
    assert out["restarts"] == 1
    _assert_results_bitwise(clean["results"], out["results"])


def test_respawn_two_recovery_rounds(A120, tmp_path):
    """Two distinct crashes need two recovery rounds; each fired crash
    is filtered from the resumed plan so it cannot re-fire."""
    clean = run_spmd(4, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0,
                     backend="procs")
    plan = FaultPlan([RankCrash(rank=1, superstep=10),
                      RankCrash(rank=3, superstep=30)], seed=0)
    out = run_spmd(4, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0,
                   backend="procs", fault_plan=plan,
                   checkpoint_path=str(tmp_path / "qb2.ckpt.npz"),
                   max_rank_restarts=2, recv_timeout=5.0,
                   collective_timeout=20.0)
    assert out["restarts"] == 2
    _assert_results_bitwise(clean["results"], out["results"])
    assert shm_segments() == []


# ---------------------------------------------------------------------------
# Budget and failure classification
# ---------------------------------------------------------------------------

def test_restart_budget_default_zero_still_raises(A120):
    plan = FaultPlan([RankCrash(rank=1, superstep=40)], seed=0)
    with pytest.raises(RankFailure) as ei:
        run_spmd(4, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0,
                 backend="procs", fault_plan=plan, recv_timeout=5.0,
                 collective_timeout=20.0)
    assert (ei.value.rank, ei.value.superstep) == (1, 40)
    assert shm_segments() == []


def test_restart_budget_exhausted_raises(A120, tmp_path):
    plan = FaultPlan([RankCrash(rank=1, superstep=10),
                      RankCrash(rank=3, superstep=30)], seed=0)
    with pytest.raises(RankFailure):
        run_spmd(4, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0,
                 backend="procs", fault_plan=plan,
                 checkpoint_path=str(tmp_path / "qb3.ckpt.npz"),
                 max_rank_restarts=1, recv_timeout=5.0,
                 collective_timeout=20.0)
    assert shm_segments() == []


def test_program_error_is_not_respawned():
    """Respawn covers rank *crashes*; a deterministic program bug would
    just crash again, so it stays fatal even with budget left."""
    def bad(comm):
        comm.barrier_sync()
        if comm.rank == 2:
            raise ZeroDivisionError("rank 2 exploded")
        comm.barrier_sync()
        return comm.rank

    with pytest.raises(Exception, match="rank 2 exploded"):
        run_spmd(4, bad, backend="procs", max_rank_restarts=3,
                 recv_timeout=5.0, collective_timeout=20.0)
    assert shm_segments() == []


def test_clean_run_reports_zero_restarts(A120):
    out = run_spmd(4, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0,
                   backend="procs", max_rank_restarts=2)
    assert out["restarts"] == 0


def test_threads_backend_rejects_max_rank_restarts(A120):
    with pytest.raises(CommunicatorError, match="max_rank_restarts"):
        run_spmd(2, spmd_randqb_ei, A120, k=8, tol=1e-1, seed=0,
                 max_rank_restarts=1)


def test_fault_plan_without_crashes_for():
    plan = FaultPlan([RankCrash(rank=1, superstep=5),
                      RankCrash(rank=2, superstep=9),
                      MessageDrop(src=0, dst=1)], seed=7)
    pruned = plan.without_crashes_for([1])
    kinds = [type(s).__name__ for s in pruned]
    assert kinds == ["RankCrash", "MessageDrop"]  # rank 2's crash kept
    assert pruned.faults[0].rank == 2
    assert pruned.seed == 7
    # message-level faults model the channel, not a one-shot event
    assert any(isinstance(s, MessageDrop) for s in pruned)


# ---------------------------------------------------------------------------
# Satellite (a): checkpoint writes are atomic
# ---------------------------------------------------------------------------

def test_checkpoint_write_is_atomic(tmp_path, monkeypatch):
    path = tmp_path / "state.npz"
    save_checkpoint(path, {"K": 8, "X": np.arange(6.0)})
    good = load_checkpoint(path)
    assert good["K"] == 8

    # a crash at the final rename must leave the previous checkpoint
    # intact and no temp litter behind
    import repro.serialize as serialize

    def boom(src, dst):
        raise OSError("simulated crash at rename")
    monkeypatch.setattr(serialize.os, "replace", boom)
    with pytest.raises(OSError, match="simulated crash"):
        save_checkpoint(path, {"K": 9, "X": np.arange(7.0)})
    monkeypatch.undo()

    survived = load_checkpoint(path)
    assert survived["K"] == 8
    assert np.array_equal(survived["X"], np.arange(6.0))
    assert [p.name for p in tmp_path.iterdir()] == ["state.npz"]


def test_checkpoint_unserializable_value_fails_before_write(tmp_path):
    path = tmp_path / "never.npz"
    with pytest.raises(CheckpointError, match="not serializable"):
        save_checkpoint(path, {"bad": object()})
    assert not path.exists()
    assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# Satellite (c): atexit registry for owned shm segments
# ---------------------------------------------------------------------------

def test_shm_atexit_registry_sweeps_orphans():
    A = np.arange(64 * 80, dtype=float).reshape(64, 80)
    shared = SharedMatrix.publish(A)
    name = shared.meta["name"]
    assert name in shm_segments()
    # simulate abnormal parent death: nobody called close(); the atexit
    # sweep must unlink the orphan
    cleaned = cleanup_owned()
    assert name in cleaned
    assert shm_segments() == []
    shared.close()  # late close after the sweep must not raise


def test_shm_registry_empty_after_clean_close():
    A = np.arange(32 * 32, dtype=float).reshape(32, 32)
    shared = SharedMatrix.publish(A)
    shared.close()  # normal path: close() unlinks and unregisters
    assert cleanup_owned() == []
    assert shm_segments() == []
