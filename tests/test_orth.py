"""Tests for repro.linalg.orth."""

import numpy as np
import pytest

from repro.linalg.orth import orth, reorthogonalize


def orthonormality_defect(Q):
    return np.linalg.norm(Q.T @ Q - np.eye(Q.shape[1]))


def test_orth_full_rank(rng):
    Y = rng.standard_normal((30, 8))
    Q = orth(Y)
    assert Q.shape == (30, 8)
    assert orthonormality_defect(Q) < 1e-12
    # spans the same space: projection of Y onto Q recovers Y
    np.testing.assert_allclose(Q @ (Q.T @ Y), Y, atol=1e-10)


def test_orth_rank_deficient_still_orthonormal(rng):
    Y = rng.standard_normal((20, 3)) @ rng.standard_normal((3, 6))
    Q = orth(Y)
    assert Q.shape == (20, 6)
    assert orthonormality_defect(Q) < 1e-10


def test_orth_zero_columns():
    Y = np.zeros((10, 4))
    Q = orth(Y)
    assert Q.shape == (10, 4)
    assert orthonormality_defect(Q) < 1e-10


def test_orth_empty():
    Q = orth(np.zeros((5, 0)))
    assert Q.shape == (5, 0)


def test_orth_single_column(rng):
    y = rng.standard_normal((15, 1))
    Q = orth(y)
    assert np.linalg.norm(Q) == pytest.approx(1.0)
    # parallel to y
    assert abs(abs(Q[:, 0] @ y[:, 0]) - np.linalg.norm(y)) < 1e-12


def test_reorthogonalize_against_previous(rng):
    Qprev = orth(rng.standard_normal((40, 6)))
    Yk = rng.standard_normal((40, 4)) + Qprev @ rng.standard_normal((6, 4))
    Qk = reorthogonalize(Yk, Qprev)
    assert orthonormality_defect(Qk) < 1e-12
    # orthogonal to the previous block
    assert np.linalg.norm(Qprev.T @ Qk) < 1e-10


def test_reorthogonalize_none_previous(rng):
    Yk = rng.standard_normal((12, 3))
    Qk = reorthogonalize(Yk, None)
    assert orthonormality_defect(Qk) < 1e-12


def test_reorthogonalize_two_passes_tighter(rng):
    Qprev = orth(rng.standard_normal((60, 20)))
    # Yk nearly inside span(Qprev): the hard case for single-pass GS
    Yk = Qprev @ rng.standard_normal((20, 5)) \
        + 1e-10 * rng.standard_normal((60, 5))
    Q2 = reorthogonalize(Yk, Qprev, passes=2)
    assert np.linalg.norm(Qprev.T @ Q2) < 1e-8
