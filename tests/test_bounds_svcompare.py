"""Tests for repro.analysis.bounds and repro.analysis.svcompare."""

import numpy as np
import pytest

from repro.analysis.bounds import (
    control_bound_satisfied,
    effective_approximation_ratios,
    exponential_bound_factor,
    hoffman_wielandt_bound_holds,
    perturbation_budget,
    r11_lower_bounds_norm,
    rank_safety_budget,
    weyl_bound_holds,
)
from repro.analysis.svcompare import (
    SVComparison,
    compare_schur_spectrum,
    indicator_vs_optimal,
)


def perturbed_pair(rng, m=30, n=25, scale=1e-3):
    A = rng.standard_normal((m, n))
    T = scale * rng.standard_normal((m, n))
    s_a = np.linalg.svd(A, compute_uv=False)
    s_at = np.linalg.svd(A + T, compute_uv=False)
    return A, T, s_a, s_at


def test_weyl_bound_on_random_perturbations(rng):
    for scale in (1e-6, 1e-3, 1e-1):
        _, T, s_a, s_at = perturbed_pair(rng, scale=scale)
        assert weyl_bound_holds(s_a, s_at, np.linalg.norm(T, 2))


def test_hoffman_wielandt_on_random_perturbations(rng):
    for scale in (1e-6, 1e-2):
        _, T, s_a, s_at = perturbed_pair(rng, scale=scale)
        assert hoffman_wielandt_bound_holds(s_a, s_at, np.linalg.norm(T))


def test_weyl_bound_detects_violation():
    # a fabricated "perturbed" spectrum far from the original must fail
    s_a = np.array([10.0, 5.0, 1.0])
    s_fake = np.array([20.0, 5.0, 1.0])
    assert not weyl_bound_holds(s_a, s_fake, t_norm2=1.0)


def test_perturbation_budget_signs():
    assert perturbation_budget(1e-2, 100.0, 0.5) == pytest.approx(0.5)
    assert perturbation_budget(1e-3, 100.0, 0.5) < 0  # no budget exists


def test_rank_safety_budget():
    assert rank_safety_budget(1e-8) == 1e-8


def test_control_bound():
    assert control_bound_satisfied([0.01, 0.01], phi=0.5)
    assert not control_bound_satisfied([0.5, 0.5], phi=0.5)
    assert control_bound_satisfied([], phi=1.0)  # nothing dropped yet
    assert not control_bound_satisfied([1.0], phi=0.0)


def test_r11_bound_on_real_tournament(small_sparse):
    from repro.pivoting.tournament import qr_tp
    res = qr_tp(small_sparse, 8)
    a2 = np.linalg.norm(small_sparse.toarray(), 2)
    assert r11_lower_bounds_norm(res.r11_diag[0], a2)


def test_effective_ratios_at_least_one_for_lu(small_sparse):
    """Bound (16): sigma_j(Schur) >= sigma_{K+j}(A)."""
    from repro import LU_CRTP
    solver = LU_CRTP(k=8, tol=1e-8, max_rank=16)
    res = solver.solve(small_sparse)
    # recover the final Schur complement through the exact identity:
    # P_r A P_c - L U has the Schur complement in its trailing block
    Ad = small_sparse.toarray()[np.ix_(res.row_perm, res.col_perm)]
    R = Ad - res.L.toarray() @ res.U.toarray()
    schur = R[res.rank:, res.rank:]
    s_schur = np.linalg.svd(schur, compute_uv=False)[:10]
    s_a = np.linalg.svd(small_sparse.toarray(), compute_uv=False)
    ratios = effective_approximation_ratios(s_schur, s_a, res.rank)
    assert np.all(ratios >= 1.0 - 1e-6)


def test_exponential_bound_factor_monotone():
    f1 = exponential_bound_factor(100, 100, 8, 1)
    f3 = exponential_bound_factor(100, 100, 8, 3)
    assert f3 > f1 > 1.0


def test_svcomparison_aggregates():
    c = SVComparison(K=8, ratios=np.array([1.0, 2.0, 3.0]))
    assert c.mean_ratio == pytest.approx(2.0)
    assert c.max_ratio == pytest.approx(3.0)
    assert c.is_effective(slack=5.0)
    assert not c.is_effective(slack=1.5)
    empty = SVComparison(K=0, ratios=np.zeros(0))
    assert empty.mean_ratio == 1.0


def test_compare_schur_spectrum_on_run(small_sparse):
    from repro import LU_CRTP
    res = LU_CRTP(k=8, tol=1e-8, max_rank=16).solve(small_sparse)
    Ad = small_sparse.toarray()[np.ix_(res.row_perm, res.col_perm)]
    schur = (Ad - res.L.toarray() @ res.U.toarray())[res.rank:, res.rank:]
    comp = compare_schur_spectrum(small_sparse, res, schur)
    assert comp.K == res.rank
    assert comp.ratios.size > 0
    assert comp.mean_ratio >= 1.0 - 1e-6
    # §III-A: in practice LU_CRTP approximates effectively
    assert comp.is_effective(slack=20.0)


def test_indicator_vs_optimal(small_sparse):
    from repro import randqb_ei
    res = randqb_ei(small_sparse, k=8, tol=1e-2)
    ratio = indicator_vs_optimal(res, small_sparse)
    assert ratio >= 1.0 - 1e-9  # can't beat Eckart-Young
    assert ratio < 50.0
