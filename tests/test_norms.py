"""Tests for repro.linalg.norms."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg.norms import (
    column_norms_sq,
    fro_norm,
    fro_norm_sq,
    row_norms_sq,
    spectral_norm_estimate,
)


def test_fro_norm_dense_matches_numpy(rng):
    A = rng.standard_normal((13, 7))
    assert fro_norm(A) == pytest.approx(np.linalg.norm(A))
    assert fro_norm_sq(A) == pytest.approx(np.linalg.norm(A) ** 2)


def test_fro_norm_sparse_only_touches_stored(small_sparse):
    assert fro_norm(small_sparse) == pytest.approx(
        np.linalg.norm(small_sparse.toarray()))


def test_fro_norm_ignores_explicit_zeros():
    A = sp.csc_matrix(np.array([[1.0, 0.0], [0.0, 2.0]]))
    A.data[0] = 1.0
    B = A.copy()
    B.data = np.append(B.data, 0.0)  # not a valid way; use construction
    A2 = sp.csc_matrix((np.array([1.0, 2.0, 0.0]),
                        (np.array([0, 1, 0]), np.array([0, 1, 1]))),
                       shape=(2, 2))
    assert fro_norm(A2) == pytest.approx(np.sqrt(5.0))


def test_fro_norm_empty():
    assert fro_norm(sp.csc_matrix((5, 5))) == 0.0
    assert fro_norm(np.zeros((3, 0))) == 0.0


def test_spectral_estimate_close_to_true(rng):
    A = rng.standard_normal((40, 30))
    true = np.linalg.norm(A, 2)
    est = spectral_norm_estimate(A, iters=200, tol=1e-12)
    assert est == pytest.approx(true, rel=1e-6)
    assert est <= true + 1e-8  # power iteration is a lower bound


def test_spectral_estimate_sparse(small_sparse):
    true = np.linalg.norm(small_sparse.toarray(), 2)
    est = spectral_norm_estimate(small_sparse, iters=300)
    assert est == pytest.approx(true, rel=1e-4)


def test_spectral_estimate_zero_matrix():
    assert spectral_norm_estimate(sp.csc_matrix((8, 8))) == 0.0


def test_column_and_row_norms(small_sparse):
    D = small_sparse.toarray()
    np.testing.assert_allclose(column_norms_sq(small_sparse),
                               (D ** 2).sum(axis=0), rtol=1e-12)
    np.testing.assert_allclose(row_norms_sq(small_sparse),
                               (D ** 2).sum(axis=1), rtol=1e-12)


def test_column_norms_dense(rng):
    A = rng.standard_normal((9, 4))
    np.testing.assert_allclose(column_norms_sq(A), (A ** 2).sum(axis=0))
    np.testing.assert_allclose(row_norms_sq(A), (A ** 2).sum(axis=1))
