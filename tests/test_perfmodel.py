"""Tests for repro.parallel.perfmodel (trace-replay performance model)."""

import numpy as np
import pytest

from repro import ilut_crtp, lu_crtp, randqb_ei
from repro.parallel.machine import MachineModel
from repro.parallel.perfmodel import (
    simulate_ilut_crtp,
    simulate_lu_crtp,
    simulate_randqb_ei,
    strong_scaling,
)
from repro.parallel.report import ScalingCurve, speedup_table


@pytest.fixture(scope="module")
def problem():
    from repro.matrices.generators import random_graded
    A = random_graded(300, 300, nnz_per_row=8, decay_rate=8.0, seed=31)
    lu = lu_crtp(A, k=16, tol=1e-2)
    il = ilut_crtp(A, k=16, tol=1e-2,
                   estimated_iterations=max(lu.iterations, 1))
    qb = randqb_ei(A, k=16, tol=1e-2)
    return A, lu, il, qb


def test_lu_report_structure(problem):
    A, lu, _, _ = problem
    rep = simulate_lu_crtp(lu, 8)
    assert rep.nprocs == 8
    assert rep.iterations == lu.iterations
    assert rep.total_seconds > 0
    for kernel in ("col_qr_tp", "sparse_qr", "row_qr_tp", "permute_rows",
                   "solve", "schur"):
        assert kernel in rep.kernel_seconds


def test_lu_initial_scaling(problem):
    """T(P) decreases over the first doublings (the Fig. 4 rising part)."""
    _, lu, _, _ = problem
    t1 = simulate_lu_crtp(lu, 1).total_seconds
    t4 = simulate_lu_crtp(lu, 4).total_seconds
    assert t4 < t1


def test_lu_scaling_saturates(problem):
    """At very large P the log(P) global stage dominates and speedup
    flattens/declines (Fig. 4 'the deterministic methods do not scale
    anymore')."""
    _, lu, _, _ = problem
    times = [simulate_lu_crtp(lu, p).total_seconds
             for p in (1, 4, 16, 64, 256, 1024, 4096)]
    best = int(np.argmin(times))
    assert best < 6  # the optimum is NOT at the largest P
    assert times[-1] > times[best]


def test_ilut_faster_than_lu_on_fill_heavy(problem):
    """ILUT's (smaller) trace must yield lower modeled time (the Fig. 5
    LU-vs-ILUT gap and the Table II speedups)."""
    _, lu, il, _ = problem
    for p in (4, 64):
        t_lu = simulate_lu_crtp(lu, p).total_seconds
        t_il = simulate_ilut_crtp(il, p).total_seconds
        assert t_il < t_lu


def test_ilut_has_threshold_kernel(problem):
    _, _, il, _ = problem
    rep = simulate_ilut_crtp(il, 8)
    assert "threshold" in rep.kernel_seconds


def test_randqb_report(problem):
    A, _, _, qb = problem
    rep = simulate_randqb_ei(qb, A, 8, k=16, power=0)
    assert rep.iterations == qb.iterations
    for kernel in ("spmm", "tsqr", "bk_update"):
        assert kernel in rep.kernel_seconds


def test_randqb_power_costs_more(problem):
    A, _, _, qb = problem
    t0 = simulate_randqb_ei(qb, A, 8, k=16, power=0).total_seconds
    t2 = simulate_randqb_ei(qb, A, 8, k=16, power=2).total_seconds
    assert t2 > 1.5 * t0  # cost roughly proportional to p+1 (Section IV)


def test_randqb_scales_further_than_lu(problem):
    """The paper's central scaling observation: RandQB_EI keeps scaling at
    process counts where LU_CRTP has saturated."""
    A, lu, _, qb = problem
    lu_curve = ScalingCurve.from_reports(
        "lu", strong_scaling(lambda p: simulate_lu_crtp(lu, p),
                             [1, 4, 16, 64, 256, 1024]))
    qb_curve = ScalingCurve.from_reports(
        "qb", strong_scaling(lambda p: simulate_randqb_ei(qb, A, p, k=16),
                             [1, 4, 16, 64, 256, 1024]))
    assert qb_curve.saturation_nprocs() >= lu_curve.saturation_nprocs()


def test_machine_model_scales_times(problem):
    _, lu, _, _ = problem
    slow = MachineModel(gamma_flop=2e-9)
    fast = MachineModel(gamma_flop=2e-10)
    ts = simulate_lu_crtp(lu, 4, machine=slow).total_seconds
    tf = simulate_lu_crtp(lu, 4, machine=fast).total_seconds
    assert ts > tf


def test_scaling_curve_helpers(problem):
    _, lu, _, _ = problem
    reports = strong_scaling(lambda p: simulate_lu_crtp(lu, p), [1, 2, 4])
    curve = ScalingCurve.from_reports("LU_CRTP", reports)
    assert curve.speedups[0] == pytest.approx(1.0)
    assert len(curve.efficiency) == 3
    txt = speedup_table([curve])
    assert "LU_CRTP" in txt and "np" in txt


def test_speedup_table_mismatched_sweeps():
    c1 = ScalingCurve("a", [1, 2], [2.0, 1.0])
    c2 = ScalingCurve("b", [1, 4], [2.0, 1.0])
    with pytest.raises(ValueError):
        speedup_table([c1, c2])


def test_dominant_kernel_is_col_tournament_at_small_p(problem):
    """Fig. 5: 'Applying QR_TP on the columns of the input dominates the
    cost of LU_CRTP' (at small np)."""
    _, lu, _, _ = problem
    rep = simulate_lu_crtp(lu, 4)
    assert rep.dominant_kernel() in ("col_qr_tp", "schur")


def test_machine_presets_change_saturation(problem):
    """Ethernet-grade communication pulls the LU saturation point earlier
    than the HPC preset (the docs/parallel_model.md claim)."""
    from repro.parallel.machine import MachineModel
    from repro.parallel.report import ScalingCurve
    _, lu, _, _ = problem
    ps = [1, 2, 4, 8, 16, 32, 64]

    def curve(machine):
        reports = [simulate_lu_crtp(lu, p, machine=machine) for p in ps]
        return ScalingCurve.from_reports("lu", reports)

    hpc = curve(MachineModel.hpc_cluster())
    eth = curve(MachineModel.ethernet_cluster())
    assert eth.saturation_nprocs() <= hpc.saturation_nprocs()


def test_report_dominant_kernel(problem):
    _, lu, _, _ = problem
    rep = simulate_lu_crtp(lu, 4)
    dom = rep.dominant_kernel()
    assert dom in rep.kernel_seconds
    assert rep.kernel_seconds[dom] == max(rep.kernel_seconds.values())
