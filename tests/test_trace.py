"""Tests for the ``repro.trace/v1`` comm-trace subsystem.

The core contract: a trace captured from a live SPMD run at P <= 8
reconstructs that run's per-rank comm ledgers **bitwise** via
:func:`repro.parallel.replay.replay_ledgers` — for every transport
algorithm (flat hub, binomial tree, chunked ring), on both backends,
with and without ``REPRO_SANITIZE=1``, and after a JSON
dump/load round trip.  On top sit the offline consumers: modeled
replay at any P (:func:`replay_costs`), Fig. 4-style extrapolation
(:func:`extrapolate`), structural diffing (:func:`trace_diff`),
re-execution against a real backend (:func:`replay_transport`), the
``SolverConfig`` ``machine=``/``trace=`` plumbing and the
``python -m repro trace`` CLI.
"""

import json

import numpy as np
import pytest

from repro.parallel import (
    CommReport,
    MachineModel,
    extrapolate,
    replay_costs,
    replay_ledgers,
    replay_transport,
    run_spmd,
    trace_diff,
)
from repro.parallel import sanitize
from repro.parallel.spmd import spmd_lu_crtp, spmd_randqb_ei
from repro.trace import TRACE_SCHEMA, CommTrace, CommTracer, TraceEvent


@pytest.fixture
def A96():
    from repro.matrices.generators import random_graded
    return random_graded(96, 48, nnz_per_row=5, decay_rate=5.0, seed=3)


def _capture(A, nprocs, *, backend="threads", algo="flat", k=4):
    machine = MachineModel(comm_algo=algo) if algo != "flat" else None
    out = run_spmd(nprocs, spmd_randqb_ei, A, k=k, tol=1e-1, seed=0,
                   backend=backend, machine=machine, trace=True)
    return out


def _assert_bitwise_ledgers(out):
    """Replayed ledgers equal the live run's, including float bit
    patterns (dict equality on floats is exact)."""
    trace = out["trace"]
    replayed = [led.to_dict() for led in replay_ledgers(trace)]
    assert replayed == out["ledgers"]


# ---------------------------------------------------------------------------
# the bitwise replay contract (tentpole)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("nprocs", [1, 2, 4, 8])
def test_replay_bitwise_threads_flat(A96, nprocs):
    _assert_bitwise_ledgers(_capture(A96, nprocs))


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_replay_bitwise_procs_flat(A96, nprocs):
    _assert_bitwise_ledgers(_capture(A96, nprocs, backend="procs"))


@pytest.mark.parametrize("nprocs", [2, 4, 8])
def test_replay_bitwise_procs_tree_and_ring(A96, nprocs):
    # even P and large-enough arrays: allreduce takes the ring transport,
    # everything else the binomial tree — both must replay bitwise
    out = _capture(A96, nprocs, backend="procs", algo="tree")
    algos = {e.algo for stream in out["trace"].events for e in stream
             if e.coll is not None}
    assert "ring" in algos and "tree" in algos
    _assert_bitwise_ledgers(out)


def test_replay_bitwise_odd_p_tree(A96):
    # odd P: no ring (needs even P), pure binomial tree
    out = _capture(A96, 5, backend="procs", algo="tree")
    _assert_bitwise_ledgers(out)


def test_replay_bitwise_sanitized(A96, monkeypatch):
    # fingerprint wrappers must stay invisible to the trace byte sizes
    monkeypatch.setenv(sanitize.ENV_VAR, "1")
    for backend, algo in [("threads", "flat"), ("procs", "tree")]:
        out = _capture(A96, 4, backend=backend, algo=algo)
        assert out["trace"].sanitized is True
        _assert_bitwise_ledgers(out)


def test_replay_bitwise_with_p2p():
    # spmd_lu_crtp mixes collectives with send/recv tournament traffic
    from repro.matrices.generators import random_graded
    A = random_graded(96, 96, nnz_per_row=5, decay_rate=5.0, seed=3)
    out = run_spmd(4, spmd_lu_crtp, A, k=4, tol=1e-1, trace=True)
    assert any(e.op == "send" for s in out["trace"].events for e in s)
    _assert_bitwise_ledgers(out)


def test_replay_bitwise_after_json_round_trip(A96, tmp_path):
    out = _capture(A96, 4)
    path = tmp_path / "t.json"
    out["trace"].dump(path)
    loaded = CommTrace.load(path)
    assert loaded.nprocs == 4 and loaded.backend == "threads"
    replayed = [led.to_dict() for led in replay_ledgers(loaded)]
    assert replayed == out["ledgers"]


def test_trace_summary_matches_live_comm(A96):
    out = _capture(A96, 4, backend="procs")
    rep = CommReport.from_trace(out["trace"])
    assert rep.to_dict() == out["comm"]
    assert CommReport.from_run(out).to_dict() == out["comm"]


# ---------------------------------------------------------------------------
# schema / capture plumbing
# ---------------------------------------------------------------------------

def test_trace_schema_tag_checked(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "repro.trace/v999", "nprocs": 1}))
    with pytest.raises(ValueError, match="schema"):
        CommTrace.load(path)
    assert TRACE_SCHEMA == "repro.trace/v1"


def test_event_dict_round_trip():
    e = TraceEvent(op="allreduce", coll=3, root=0, kernel="tsqr",
                   site="repro/parallel/kernels.py:10", algo="ring",
                   bytes_in=64.0, bytes_out=0.0,
                   meta={"numel": 8, "itemsize": 8})
    assert TraceEvent.from_dict(e.to_dict()) == e
    lean = TraceEvent(op="barrier", coll=0)
    d = lean.to_dict()
    assert "meta" not in d and "tag" not in d and "kernel" not in d


def test_tracer_lockstep_counter():
    t = CommTracer(0)
    t.collective(op="bcast", root=0, kernel=None, algo="flat",
                 bytes_in=8.0, bytes_out=0.0, site="x.py:1")
    t.send(dst=1, tag=0, kernel="k", nbytes=16.0, site="x.py:2")
    t.collective(op="gather", root=0, kernel="k", algo="flat",
                 bytes_in=8.0, bytes_out=0.0, site="x.py:3")
    colls = [e.coll for e in t.events if e.coll is not None]
    assert colls == [0, 1]


def test_sites_are_checkout_stable(A96):
    # call-site fingerprints are trimmed to SITE_TRIM_DEPTH components,
    # never absolute paths — traces from different clones compare equal
    assert sanitize.SITE_TRIM_DEPTH == 3
    out = _capture(A96, 2)
    sites = {e.site for s in out["trace"].events for e in s}
    assert sites
    for site in sites:
        assert not site.startswith("/")
        path, _, line = site.rpartition(":")
        assert line.isdigit()
        assert 1 <= len(path.split("/")) <= sanitize.SITE_TRIM_DEPTH


def test_replay_rejects_incomplete_group():
    trace = CommTrace(nprocs=2, backend="threads", algo="flat", events=[
        [TraceEvent(op="bcast", coll=0, bytes_in=8.0)], []])
    with pytest.raises(ValueError, match="rank"):
        replay_ledgers(trace)


# ---------------------------------------------------------------------------
# modeled replay + extrapolation
# ---------------------------------------------------------------------------

def test_replay_costs_volume_is_machine_independent(A96):
    out = _capture(A96, 4)
    trace = out["trace"]
    a = replay_costs(trace, nprocs=64)
    b = replay_costs(trace, nprocs=64, machine="ethernet-cluster")
    assert a.bytes_total == b.bytes_total
    assert a.msgs_total == b.msgs_total
    assert a.seconds_total != b.seconds_total  # coefficients do differ
    assert "volume" in a.table()


def test_replay_costs_at_recorded_scale_matches_live_volume(A96):
    out = _capture(A96, 4, backend="procs")
    rep = replay_costs(out["trace"])
    assert rep.bytes_total == pytest.approx(out["comm"]["bytes_sent"])
    assert rep.msgs_total == out["comm"]["msgs"]


def test_extrapolate_reaches_4096(A96):
    out = _capture(A96, 4)
    rep = extrapolate(out["trace"], algo="tree")
    assert [r["nprocs"] for r in rep.rows] == [1, 4, 16, 64, 256, 1024,
                                              4096]
    base = next(r for r in rep.rows if r["nprocs"] == 4)
    assert base["speedup"] == pytest.approx(1.0)
    assert all(r["total_seconds"] > 0 for r in rep.rows)
    assert "4096" in rep.table()


def test_replay_transport_reproduces_volume(A96):
    out = _capture(A96, 2)
    redo = replay_transport(out["trace"], backend="threads")
    assert redo["comm"]["bytes_sent"] == out["comm"]["bytes_sent"]
    assert redo["comm"]["msgs"] == out["comm"]["msgs"]


def test_replay_transport_tree_needs_procs(A96):
    out = _capture(A96, 2, backend="procs", algo="tree")
    # the threads backend is flat-only: a tree trace cannot replay there
    with pytest.raises(ValueError, match="flat transport"):
        replay_transport(out["trace"], backend="threads")
    redo = replay_transport(out["trace"], backend="procs")
    assert redo["comm"]["bytes_sent"] == out["comm"]["bytes_sent"]
    assert redo["comm"]["msgs"] == out["comm"]["msgs"]


def test_trace_diff_equal_and_drift(A96):
    out = _capture(A96, 2)
    a, b = out["trace"], CommTrace.from_json(out["trace"].to_json())
    assert trace_diff(a, b)["equal"] is True
    for e in b.events[1]:
        if e.coll is not None:
            e.bytes_in += 8.0
            break
    res = trace_diff(a, b)
    assert res["equal"] is False and res["differences"]


# ---------------------------------------------------------------------------
# SolverConfig machine= / trace= plumbing
# ---------------------------------------------------------------------------

def test_config_machine_normalized_and_cache_key():
    from repro.api import SolverConfig
    base = SolverConfig(k=8)
    coeff = SolverConfig(k=8, machine={"alpha": 5e-5})
    preset = SolverConfig(k=8, machine="ethernet-cluster")
    tree = SolverConfig(k=8, machine={"comm_algo": "tree"})
    traced = SolverConfig(k=8, trace=True)
    assert isinstance(coeff.machine, MachineModel)
    assert isinstance(preset.machine, MachineModel)
    # cost coefficients and trace capture never change the factorization
    assert coeff.cache_key() == base.cache_key()
    assert preset.cache_key() == base.cache_key()
    assert traced.cache_key() == base.cache_key()
    # ...but a non-flat transport reorders reductions: new identity
    assert tree.cache_key() != base.cache_key()
    with pytest.raises(ValueError, match="preset"):
        SolverConfig(machine="no-such-cluster")
    rt = SolverConfig.from_dict(tree.to_dict())
    assert rt.machine.comm_algo == "tree"
    assert rt.cache_key() == tree.cache_key()


def test_deprecated_summarize_ledgers_shim(A96):
    import warnings

    import repro.parallel.report as report_mod
    from repro.parallel import summarize_ledgers
    out = _capture(A96, 2)
    ledgers = out["ledgers"]
    report_mod._warned_summarize_ledgers = False
    with pytest.warns(DeprecationWarning, match="summarize_ledgers"):
        d = summarize_ledgers(ledgers, backend="threads", algo="flat")
    assert d == out["comm"]
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # warns only once per process
        summarize_ledgers(ledgers, backend="threads", algo="flat")


# ---------------------------------------------------------------------------
# CLI: solve --trace / trace replay|extrapolate|diff
# ---------------------------------------------------------------------------

def run_cli(capsys, *argv):
    from repro.cli import main
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_cli_trace_round_trip(capsys, tmp_path):
    path = tmp_path / "m4.trace.json"
    code, out = run_cli(capsys, "solve", "M4", "--scale", "0.25",
                        "--method", "randqb", "-k", "8",
                        "--nprocs", "2", "--trace", str(path))
    assert code == 0 and "trace written to" in out
    trace = CommTrace.load(path)
    assert trace.nprocs == 2

    code, out = run_cli(capsys, "trace", "replay", str(path),
                        "--nprocs", "64")
    assert code == 0 and "P=64" in out

    code, out = run_cli(capsys, "trace", "extrapolate", str(path),
                        "--algo", "tree", "--machine", "ib-cluster")
    assert code == 0 and "4096" in out

    code, out = run_cli(capsys, "trace", "diff", str(path), str(path))
    assert code == 0 and "equivalent" in out

    # a drifted copy must flip the exit code
    other = tmp_path / "drift.trace.json"
    d = trace.to_json()
    for stream in d["events"]:
        for e in stream:
            if "coll" in e:
                e["bytes_in"] = float(e["bytes_in"]) + 8.0
    other.write_text(json.dumps(d))
    code, out = run_cli(capsys, "trace", "diff", str(path), str(other))
    assert code == 1 and "bytes" in out


def test_cli_trace_requires_spmd(capsys, tmp_path):
    with pytest.raises(SystemExit, match="nprocs"):
        run_cli(capsys, "solve", "M4", "--scale", "0.25",
                "--trace", str(tmp_path / "t.json"))
