"""Tests for repro.sparse.spgemm (from-scratch sparse multiply)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.sparse.spgemm import SpGEMMWorkspace, spgemm, spgemm_flops


def rand_sparse(m, n, density, seed):
    rng = np.random.default_rng(seed)
    return sp.random(m, n, density=density, random_state=rng,
                     data_rvs=rng.standard_normal).tocsc()


def test_matches_scipy(small_sparse):
    B = rand_sparse(60, 25, 0.2, 1)
    C = spgemm(small_sparse, B)
    ref = (small_sparse @ B).toarray()
    np.testing.assert_allclose(C.toarray(), ref, atol=1e-12)


def test_rectangular_chain():
    A = rand_sparse(7, 13, 0.4, 2)
    B = rand_sparse(13, 5, 0.4, 3)
    np.testing.assert_allclose(spgemm(A, B).toarray(),
                               (A @ B).toarray(), atol=1e-12)


def test_dimension_mismatch():
    with pytest.raises(ValueError):
        spgemm(sp.identity(3), sp.identity(4))


def test_empty_operands():
    A = sp.csc_matrix((5, 4))
    B = rand_sparse(4, 3, 0.5, 4)
    assert spgemm(A, B).nnz == 0
    assert spgemm(B.T, A.T.tocsc()).nnz == 0


def test_identity():
    A = rand_sparse(9, 9, 0.3, 5)
    np.testing.assert_allclose(spgemm(sp.identity(9, format="csc"), A)
                               .toarray(), A.toarray(), atol=1e-14)


def test_flops_reporting():
    A = rand_sparse(20, 15, 0.3, 6)
    B = rand_sparse(15, 10, 0.3, 7)
    C, flops = spgemm(A, B, return_flops=True)
    # exact count: 2 * sum_k nnz(A[:,k]) * nnz(B[k,:])
    a_colnnz = np.diff(A.indptr)
    b_rownnz = np.bincount(B.tocsc().indices, minlength=15)
    expected = 2.0 * np.dot(a_colnnz, b_rownnz)
    assert flops == expected
    assert spgemm_flops(A, B) == expected


def test_cancellation_pruned():
    A = sp.csc_matrix(np.array([[1.0, -1.0]]))
    B = sp.csc_matrix(np.array([[1.0], [1.0]]))
    C = spgemm(A, B)
    assert C.nnz == 0  # 1*1 + (-1)*1 cancels and is eliminated


@given(st.integers(0, 2 ** 16), st.floats(0.05, 0.5), st.floats(0.05, 0.5))
@settings(max_examples=25, deadline=None)
def test_property_matches_scipy(seed, da, db):
    rng = np.random.default_rng(seed)
    m, k, n = rng.integers(1, 20, size=3)
    A = sp.random(m, k, density=da, random_state=rng,
                  data_rvs=rng.standard_normal).tocsc()
    B = sp.random(k, n, density=db, random_state=rng,
                  data_rvs=rng.standard_normal).tocsc()
    np.testing.assert_allclose(spgemm(A, B).toarray(),
                               (A @ B).toarray(), atol=1e-10)


def test_schur_engine_integration(small_sparse):
    """spgemm slots into a Schur-complement computation identically."""
    A11 = small_sparse[:8, :8].toarray() + 5 * np.eye(8)
    A12 = small_sparse[:8, 8:].tocsc()
    A21 = small_sparse[8:, :8].tocsc()
    A22 = small_sparse[8:, 8:].tocsc()
    F = sp.csc_matrix(np.linalg.solve(A11.T, A21.toarray().T).T)
    S1 = (A22 - F @ A12).toarray()
    S2 = (A22 - spgemm(F, A12)).toarray()
    np.testing.assert_allclose(S1, S2, atol=1e-10)


def test_spgemm_large_random_stress():
    """A larger stress case keeping the vectorized gather honest."""
    rng = np.random.default_rng(11)
    A = sp.random(300, 200, density=0.05, random_state=rng,
                  data_rvs=rng.standard_normal).tocsc()
    B = sp.random(200, 250, density=0.05, random_state=rng,
                  data_rvs=rng.standard_normal).tocsc()
    C, flops = spgemm(A, B, return_flops=True)
    ref = A @ B
    assert abs(C - ref).max() < 1e-10
    assert flops == spgemm_flops(A, B)


# -- workspace reuse ---------------------------------------------------------

def test_workspace_matches_fresh_allocation():
    ws = SpGEMMWorkspace()
    rng = np.random.default_rng(20)
    for _trial in range(4):
        m, k, n = rng.integers(10, 80, size=3)
        A = sp.random(m, k, density=0.2, random_state=rng,
                      data_rvs=rng.standard_normal).tocsc()
        B = sp.random(k, n, density=0.2, random_state=rng,
                      data_rvs=rng.standard_normal).tocsc()
        fresh = spgemm(A, B)
        reused = spgemm(A, B, workspace=ws)
        assert fresh.nnz == reused.nnz
        if fresh.nnz:
            assert abs(fresh - reused).max() == 0.0


def test_workspace_grows_monotonically():
    ws = SpGEMMWorkspace()
    rng = np.random.default_rng(21)
    small = sp.random(10, 10, density=0.3, random_state=rng).tocsc()
    spgemm(small, small, workspace=ws)
    cap_small = ws.capacity
    big = sp.random(200, 200, density=0.1, random_state=rng).tocsc()
    spgemm(big, big, workspace=ws)
    cap_big = ws.capacity
    assert cap_big >= cap_small
    # shrinking back down must not shrink the buffers
    spgemm(small, small, workspace=ws)
    assert ws.capacity == cap_big


def test_workspace_flops_and_results_stable_across_reuse():
    """Reusing buffers (possibly dirty from a prior product) never leaks
    stale values or miscounts flops."""
    ws = SpGEMMWorkspace()
    rng = np.random.default_rng(22)
    A = sp.random(60, 40, density=0.25, random_state=rng,
                  data_rvs=rng.standard_normal).tocsc()
    B = sp.random(40, 50, density=0.25, random_state=rng,
                  data_rvs=rng.standard_normal).tocsc()
    first, fl1 = spgemm(A, B, workspace=ws, return_flops=True)
    second, fl2 = spgemm(A, B, workspace=ws, return_flops=True)
    assert fl1 == fl2 == spgemm_flops(A, B)
    assert abs(first - second).max() == 0.0


@given(st.integers(0, 2 ** 16), st.floats(0.05, 0.5), st.floats(0.05, 0.5))
@settings(max_examples=25, deadline=None)
def test_property_workspace_matches_scipy(seed, da, db):
    """Randomized ensembles through one long-lived workspace stay exact."""
    rng = np.random.default_rng(seed)
    m, k, n = rng.integers(1, 20, size=3)
    A = sp.random(m, k, density=da, random_state=rng,
                  data_rvs=rng.standard_normal).tocsc()
    B = sp.random(k, n, density=db, random_state=rng,
                  data_rvs=rng.standard_normal).tocsc()
    ws = SpGEMMWorkspace()
    C1, flops = spgemm(A, B, workspace=ws, return_flops=True)
    C2 = spgemm(A, B, workspace=ws)  # second pass through warmed buffers
    np.testing.assert_allclose(C1.toarray(), (A @ B).toarray(), atol=1e-10)
    assert flops == spgemm_flops(A, B)
    assert (C1 != C2).nnz == 0


def test_spgemm_preserves_dtype():
    A = sp.random(12, 12, density=0.4, format="csc",
                  random_state=np.random.default_rng(23))
    A32 = A.astype(np.float32)
    C = spgemm(A32, A32)
    assert C.dtype == np.float32
