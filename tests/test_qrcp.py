"""Tests for repro.linalg.qrcp (Householder QR, QRCP, strong RRQR)."""

import numpy as np
import pytest

from repro.linalg.qrcp import _qrcp_native, householder_qr, qrcp, strong_rrqr
from repro.linalg.triangular import solve_upper


def graded(rng, m, n, cond=1e8):
    U, _ = np.linalg.qr(rng.standard_normal((m, n)))
    V, _ = np.linalg.qr(rng.standard_normal((n, n)))
    s = np.logspace(0, -np.log10(cond), n)
    return U @ np.diag(s) @ V.T


def test_householder_qr_reconstruction(rng):
    A = rng.standard_normal((25, 10))
    Q, R = householder_qr(A)
    np.testing.assert_allclose(Q @ R, A, atol=1e-12)
    assert np.linalg.norm(Q.T @ Q - np.eye(10)) < 1e-12
    assert np.allclose(R, np.triu(R))


def test_householder_qr_wide(rng):
    A = rng.standard_normal((6, 14))
    Q, R = householder_qr(A)
    assert Q.shape == (6, 6)
    assert R.shape == (6, 14)
    np.testing.assert_allclose(Q @ R, A, atol=1e-12)


@pytest.mark.parametrize("engine", ["lapack", "native"])
def test_qrcp_reconstruction_and_monotone_diag(rng, engine):
    A = graded(rng, 30, 12)
    Q, R, piv = qrcp(A, engine=engine)
    np.testing.assert_allclose(Q @ R, A[:, piv], atol=1e-10)
    d = np.abs(np.diag(R))
    assert np.all(d[:-1] >= d[1:] - 1e-12)


def test_qrcp_native_matches_lapack_pivots(rng):
    A = graded(rng, 40, 10, cond=1e6)
    _, _, piv_l = qrcp(A, engine="lapack")
    _, _, piv_n = qrcp(A, engine="native")
    np.testing.assert_array_equal(piv_l, piv_n)


def test_qrcp_truncated_native(rng):
    A = graded(rng, 30, 12)
    Q, R, piv = qrcp(A, k=5, engine="native")
    assert Q.shape == (30, 5)
    assert R.shape == (5, 12)
    # leading 5 columns exactly reproduced
    np.testing.assert_allclose(Q @ R[:, :5], A[:, piv[:5]], atol=1e-10)


def test_qrcp_want_q_false(rng):
    A = graded(rng, 20, 8)
    Qn, R, piv = qrcp(A, want_q=False)
    assert Qn is None
    Q2, R2, piv2 = qrcp(A)
    np.testing.assert_array_equal(piv, piv2)
    np.testing.assert_allclose(np.abs(R), np.abs(R2), atol=1e-10)


def test_qrcp_rank_deficient(rng):
    A = rng.standard_normal((20, 4)) @ rng.standard_normal((4, 10))
    Q, R, piv = qrcp(A)
    d = np.abs(np.diag(R))
    assert np.all(d[4:] < 1e-10 * d[0])
    np.testing.assert_allclose(Q @ R, A[:, piv], atol=1e-10)


def test_qrcp_zero_matrix():
    A = np.zeros((8, 5))
    Q, R, piv = qrcp(A)
    assert np.allclose(R, 0)
    assert sorted(piv.tolist()) == list(range(5))


def test_qrcp_pivot_reveals_dominant_column(rng):
    A = rng.standard_normal((15, 6))
    A[:, 3] *= 100.0
    _, _, piv = qrcp(A)
    assert piv[0] == 3


def test_strong_rrqr_bounded_interaction(rng):
    # Kahan-like matrix: classical QRCP pivots are fine but strong RRQR
    # must certify |R11^{-1} R12| <= f
    from repro.matrices.generators import kahan_matrix
    A = kahan_matrix(40, theta=1.25).toarray()
    k = 10
    Q, R, piv = strong_rrqr(A, k, f=2.0)
    np.testing.assert_allclose(Q @ R, A[:, piv], atol=1e-9)
    W = solve_upper(R[:k, :k], R[:k, k:])
    assert np.max(np.abs(W)) <= 2.0 + 1e-8


def test_strong_rrqr_k_equals_n(rng):
    A = rng.standard_normal((12, 6))
    Q, R, piv = strong_rrqr(A, 6)
    np.testing.assert_allclose(Q @ R, A[:, piv], atol=1e-10)


def test_strong_rrqr_invalid_k():
    with pytest.raises(ValueError):
        strong_rrqr(np.eye(4), 0)


def test_strong_rrqr_detects_rank(rng):
    A = rng.standard_normal((30, 5)) @ rng.standard_normal((5, 20))
    Q, R, piv = strong_rrqr(A, 5, f=2.0)
    d = np.abs(np.diag(R))
    assert d[4] > 1e-8 * d[0]
    assert np.all(d[5:] < 1e-8 * d[0])
