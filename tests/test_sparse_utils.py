"""Tests for repro.sparse.utils."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.utils import (
    density,
    drop_explicit_zeros,
    ensure_csc,
    ensure_csr,
    nnz_of,
    raw_csc,
    raw_csr,
    sparsity_summary,
)


def test_ensure_csc_from_dense():
    A = ensure_csc(np.eye(3))
    assert sp.issparse(A) and A.format == "csc"
    assert A.dtype == np.float64


def test_ensure_csc_idempotent(small_sparse):
    A = ensure_csc(small_sparse)
    B = ensure_csc(A)
    assert B.format == "csc"


def test_ensure_csr_from_coo(small_sparse):
    A = ensure_csr(small_sparse.tocoo())
    assert A.format == "csr"


def test_ensure_casts_dtype():
    A = sp.csc_matrix(np.eye(3, dtype=np.float32))
    assert ensure_csc(A).dtype == np.float64


def test_ensure_csc_is_true_noop_on_canonical_input(small_sparse):
    """An already-canonical CSC must come back as the *same object* —
    no conversion, no hidden copy (the hot-path contract)."""
    A = small_sparse.tocsc()
    A.sort_indices()
    assert ensure_csc(A) is A
    assert ensure_csc(A, dtype=None) is A


def test_ensure_csr_is_true_noop_on_canonical_input(small_sparse):
    A = small_sparse.tocsr()
    A.sort_indices()
    assert ensure_csr(A) is A
    assert ensure_csr(A, dtype=None) is A


def test_ensure_does_not_mutate_unsorted_input():
    """Non-canonical inputs are normalized on a copy, never in place."""
    A = sp.csc_matrix((np.array([1.0, 2.0]),
                       np.array([2, 0]), np.array([0, 2, 2, 2])),
                      shape=(3, 3))
    A.has_sorted_indices = False
    B = ensure_csc(A)
    assert B is not A
    assert B.has_sorted_indices
    np.testing.assert_array_equal(A.indices, [2, 0])  # input untouched


def test_ensure_dtype_none_preserves_dtype():
    A32 = sp.csc_matrix(np.eye(3, dtype=np.float32))
    assert ensure_csc(A32, dtype=None).dtype == np.float32
    assert ensure_csr(A32.tocsr(), dtype=None).dtype == np.float32


def test_raw_csr_wraps_without_copy(small_sparse):
    A = small_sparse.tocsr()
    A.sort_indices()
    R = raw_csr(A.data, A.indices, A.indptr, A.shape)
    assert R.format == "csr"
    assert R.shape == A.shape
    assert R.data is A.data and R.indices is A.indices
    assert R.has_sorted_indices
    assert abs(R - A).max() == 0.0


def test_raw_csc_wraps_without_copy(small_sparse):
    A = small_sparse.tocsc()
    A.sort_indices()
    C = raw_csc(A.data, A.indices, A.indptr, A.shape)
    assert C.format == "csc"
    assert C.data is A.data
    assert abs(C - A).max() == 0.0


def test_raw_csr_lazy_sorted_check():
    """``sorted_indices=None`` leaves scipy's lazy canonicality check in
    place: unsorted rows are detected (and sortable) on demand."""
    data = np.array([1.0, 2.0])
    indices = np.array([2, 0], dtype=np.int32)
    indptr = np.array([0, 2], dtype=np.int32)
    R = raw_csr(data, indices, indptr, (1, 3), sorted_indices=None)
    assert not R.has_sorted_indices  # lazily computed, correctly False
    R.sort_indices()
    np.testing.assert_array_equal(R.indices, [0, 2])


def test_drop_explicit_zeros():
    A = sp.csc_matrix((np.array([1.0, 0.0, 2e-15, 3.0]),
                       (np.array([0, 1, 2, 0]), np.array([0, 1, 2, 2]))),
                      shape=(3, 3))
    B = drop_explicit_zeros(A.copy())
    assert B.nnz == 3  # exact zero removed, 2e-15 kept
    C = drop_explicit_zeros(A.copy(), tol=1e-12)
    assert C.nnz == 2


def test_nnz_of():
    assert nnz_of(sp.identity(4, format="csc")) == 4
    assert nnz_of(np.zeros((2, 3))) == 6  # dense = stored count


def test_density():
    A = sp.identity(10, format="csc")
    assert density(A) == pytest.approx(0.1)
    assert density(sp.csc_matrix((0, 5))) == 0.0


def test_sparsity_summary(small_sparse):
    s = sparsity_summary(small_sparse)
    assert s["shape"] == (60, 60)
    assert s["nnz"] == small_sparse.nnz
    assert 0 < s["density"] < 1
    assert s["max_row_nnz"] >= s["avg_row_nnz"]
