"""Tests for repro.sparse.utils."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.utils import (
    density,
    drop_explicit_zeros,
    ensure_csc,
    ensure_csr,
    nnz_of,
    sparsity_summary,
)


def test_ensure_csc_from_dense():
    A = ensure_csc(np.eye(3))
    assert sp.issparse(A) and A.format == "csc"
    assert A.dtype == np.float64


def test_ensure_csc_idempotent(small_sparse):
    A = ensure_csc(small_sparse)
    B = ensure_csc(A)
    assert B.format == "csc"


def test_ensure_csr_from_coo(small_sparse):
    A = ensure_csr(small_sparse.tocoo())
    assert A.format == "csr"


def test_ensure_casts_dtype():
    A = sp.csc_matrix(np.eye(3, dtype=np.float32))
    assert ensure_csc(A).dtype == np.float64


def test_drop_explicit_zeros():
    A = sp.csc_matrix((np.array([1.0, 0.0, 2e-15, 3.0]),
                       (np.array([0, 1, 2, 0]), np.array([0, 1, 2, 2]))),
                      shape=(3, 3))
    B = drop_explicit_zeros(A.copy())
    assert B.nnz == 3  # exact zero removed, 2e-15 kept
    C = drop_explicit_zeros(A.copy(), tol=1e-12)
    assert C.nnz == 2


def test_nnz_of():
    assert nnz_of(sp.identity(4, format="csc")) == 4
    assert nnz_of(np.zeros((2, 3))) == 6  # dense = stored count


def test_density():
    A = sp.identity(10, format="csc")
    assert density(A) == pytest.approx(0.1)
    assert density(sp.csc_matrix((0, 5))) == 0.0


def test_sparsity_summary(small_sparse):
    s = sparsity_summary(small_sparse)
    assert s["shape"] == (60, 60)
    assert s["nnz"] == small_sparse.nnz
    assert 0 < s["density"] < 1
    assert s["max_row_nnz"] >= s["avg_row_nnz"]
