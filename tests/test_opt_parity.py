"""Bitwise parity of every optimized hot-path route against its reference.

The optimization layer (index-window blocks, symbolic-free matmul, raw
constructors, fused thresholding, batched sketching, colamd argmin scan)
promises *identical values in identical canonical order* — not merely
"close".  These tests pin that contract: optimized and reference routes
must agree exactly (``== 0.0`` max difference, ``array_equal`` pivots,
``==`` indicator trajectories), so any future drift is a hard failure.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.ilut_crtp import ILUT_CRTP
from repro.core.lu_crtp import LU_CRTP
from repro.core.randqb_ei import RandQB_EI
from repro.sparse.ops import csr_matmul_nosym, permute, split_2x2
from repro.sparse.thresholding import (apply_threshold_mask, drop_small,
                                       threshold_mask)
from repro.sparse.utils import raw_csc, raw_csr
from repro.sparse.window import (csr_rows_to_dense, dense_rows_to_csr,
                                 extract_leading_columns, permuted_blocks)


def _m2_analogue(n, seed=1, density=0.02):
    rng = np.random.default_rng(seed)
    A = sp.random(n, n, density=density, random_state=rng, format="csc")
    return (A + sp.diags(np.linspace(1, 0.01, n), format="csc")).tocsc()


def _assert_same_result(r1, r2):
    assert np.array_equal(r1.row_perm, r2.row_perm)
    assert np.array_equal(r1.col_perm, r2.col_perm)
    assert r1.rank == r2.rank and r1.iterations == r2.iterations
    assert abs(r1.L - r2.L).max() == 0.0
    assert abs(r1.U - r2.U).max() == 0.0
    assert len(r1.history) == len(r2.history)
    for a, b in zip(r1.history, r2.history):
        assert a.indicator == b.indicator


# -- end-to-end solver parity ------------------------------------------------

@pytest.mark.parametrize("n,k", [(120, 8), (250, 16)])
def test_lu_crtp_optimized_bitwise_parity(n, k):
    A = _m2_analogue(n)
    common = dict(k=k, tol=1e-6, max_rank=min(4 * k, n),
                  raise_on_failure=False)
    _assert_same_result(LU_CRTP(optimized=False, **common).solve(A),
                        LU_CRTP(optimized=True, **common).solve(A))


@pytest.mark.parametrize("n,k", [(120, 8), (250, 16)])
def test_ilut_crtp_optimized_bitwise_parity(n, k):
    A = _m2_analogue(n)
    common = dict(k=k, tol=1e-6, max_rank=min(4 * k, n),
                  raise_on_failure=False, estimated_iterations=6)
    r_ref = ILUT_CRTP(optimized=False, **common).solve(A)
    r_opt = ILUT_CRTP(optimized=True, **common).solve(A)
    _assert_same_result(r_ref, r_opt)


def test_ilut_crtp_parity_with_active_thresholding():
    """A loose tolerance makes mu large enough that entries really drop,
    exercising the fused mask-then-apply route against drop_small."""
    A = _m2_analogue(200, density=0.05)
    common = dict(k=16, tol=5e-2, max_rank=128, raise_on_failure=False,
                  estimated_iterations=4)
    r_ref = ILUT_CRTP(optimized=False, **common).solve(A)
    r_opt = ILUT_CRTP(optimized=True, **common).solve(A)
    _assert_same_result(r_ref, r_opt)
    assert r_opt.threshold > 0


@pytest.mark.parametrize("power", [0, 1])
def test_randqb_optimized_bitwise_parity(power):
    A = _m2_analogue(200, density=0.05)
    common = dict(k=16, tol=1e-4, power=power, seed=7, max_rank=96,
                  raise_on_failure=False)
    r_ref = RandQB_EI(optimized=False, **common).solve(A)
    r_opt = RandQB_EI(optimized=True, **common).solve(A)
    assert r_ref.rank == r_opt.rank
    assert abs(r_ref.Q - r_opt.Q).max() == 0.0
    assert abs(r_ref.B - r_opt.B).max() == 0.0
    for a, b in zip(r_ref.history, r_opt.history):
        assert a.indicator == b.indicator


# -- kernel-level parity -----------------------------------------------------

def test_permuted_blocks_matches_permute_split():
    A = _m2_analogue(150, seed=2, density=0.06)
    rng = np.random.default_rng(3)
    rp, cp = rng.permutation(150), rng.permutation(150)
    k = 24
    P = permute(A, rp, cp).tocsc()
    A11r, A12r, A21r, A22r = split_2x2(P, k)
    A11d, A12, A21, A22 = permuted_blocks(A, cp, rp, k)
    np.testing.assert_array_equal(A11d, A11r.toarray())  # A11 comes back dense
    for ref, opt in [(A12r, A12), (A21r, A21), (A22r, A22)]:
        assert ref.nnz == opt.nnz
        if ref.nnz:
            assert abs(ref - opt).max() == 0.0


def test_csr_matmul_nosym_matches_scipy():
    rng = np.random.default_rng(4)
    for m, k, n, d in [(50, 30, 40, 0.2), (200, 16, 200, 0.3),
                       (5, 5, 5, 0.8)]:
        A = sp.random(m, k, density=d, random_state=rng,
                      data_rvs=rng.standard_normal).tocsr()
        B = sp.random(k, n, density=d, random_state=rng,
                      data_rvs=rng.standard_normal).tocsr()
        C = csr_matmul_nosym(A, B)
        ref = A @ B
        assert C.shape == ref.shape
        assert abs(C - ref).max() == 0.0


def test_threshold_mask_matches_drop_small():
    rng = np.random.default_rng(5)
    S = sp.random(120, 120, density=0.3, random_state=rng,
                  data_rvs=rng.standard_normal).tocsc()
    for mu in (0.0, 1e-3, 0.5, 10.0):
        res = drop_small(S, mu)  # copies internally; S is not mutated
        M = S.copy()
        mask, d_nnz, d_sq, d_max = threshold_mask(M, mu)
        apply_threshold_mask(M, mask)
        assert d_nnz == res.dropped_nnz
        assert d_sq == res.dropped_norm_sq
        assert M.nnz == res.matrix.nnz
        if M.nnz:
            assert abs(M - res.matrix).max() == 0.0
        if d_nnz:
            assert 0 < d_max < mu


def test_raw_constructors_roundtrip():
    rng = np.random.default_rng(6)
    A = sp.random(40, 30, density=0.2, random_state=rng,
                  data_rvs=rng.standard_normal).tocsr()
    A.sort_indices()
    R = raw_csr(A.data, A.indices, A.indptr, A.shape)
    assert R.format == "csr" and R.shape == A.shape
    assert R.has_sorted_indices
    assert abs(R - A).max() == 0.0
    assert R.data is A.data  # no hidden copy

    C = A.tocsc()
    C.sort_indices()
    R2 = raw_csc(C.data, C.indices, C.indptr, C.shape)
    assert R2.format == "csc" and abs(R2 - C).max() == 0.0


def test_dense_roundtrip_through_window_helpers():
    rng = np.random.default_rng(7)
    A = sp.random(30, 25, density=0.3, random_state=rng,
                  data_rvs=rng.standard_normal).tocsr()
    rows = np.array([2, 7, 11, 29])
    D = csr_rows_to_dense(A, rows)
    np.testing.assert_array_equal(D, A[rows].toarray())
    S = dense_rows_to_csr(D, rows, 30)
    ref = sp.lil_matrix((30, 25))
    ref[rows] = D
    assert S.shape == (30, 25)
    assert abs(S - ref.tocsr()).max() == 0.0


def test_extract_leading_columns_matches_slicing():
    A = _m2_analogue(80, seed=8, density=0.1)
    cols = np.random.default_rng(9).permutation(80)[:12]
    E = extract_leading_columns(A, cols)
    ref = A[:, cols].tocsc()
    assert abs(E - ref).max() == 0.0


def test_colamd_scan_and_heap_agree():
    """The argmin-scan selection and the lazy-deletion heap are two
    implementations of the same lexicographic minimum — identical perms."""
    import importlib
    colamd_mod = importlib.import_module("repro.ordering.colamd")
    rng = np.random.default_rng(10)
    for _trial in range(5):
        A = sp.random(60, 60, density=0.08, random_state=rng,
                      format="csc")
        p_scan = colamd_mod.colamd(A)
        cutoff = colamd_mod._SCAN_CUTOFF
        try:
            colamd_mod._SCAN_CUTOFF = -1  # force the heap route
            p_heap = colamd_mod.colamd(A)
        finally:
            colamd_mod._SCAN_CUTOFF = cutoff
        assert np.array_equal(p_scan, p_heap)


def test_randqb_checkpointing_disables_batching_but_stays_exact():
    """Checkpointed runs must not batch (RNG state capture) yet still
    reproduce the reference trajectory exactly."""
    A = _m2_analogue(150, density=0.05)
    seen = []
    common = dict(k=8, tol=1e-4, seed=3, max_rank=64,
                  raise_on_failure=False)
    r_ck = RandQB_EI(optimized=True, checkpoint_callback=seen.append,
                     **common).solve(A)
    r_ref = RandQB_EI(optimized=False, **common).solve(A)
    assert seen, "checkpoint callback never fired"
    assert abs(r_ck.Q - r_ref.Q).max() == 0.0
    assert abs(r_ck.B - r_ref.B).max() == 0.0
