"""Tests for repro.parallel.dist_dense (2-D element-cyclic distribution)."""

import numpy as np
import pytest

from repro.exceptions import DistributionError
from repro.parallel.comm import run_spmd
from repro.parallel.dist_dense import DistDense, ProcessGrid


def test_grid_coords_roundtrip():
    g = ProcessGrid(2, 3)
    assert g.size == 6
    for r in range(6):
        i, j = g.coords(r)
        assert g.rank_of(i, j) == r
    with pytest.raises(DistributionError):
        g.coords(6)
    with pytest.raises(DistributionError):
        ProcessGrid(0, 2)


def test_square_ish():
    assert ProcessGrid.square_ish(12) == ProcessGrid(3, 4)
    assert ProcessGrid.square_ish(7) == ProcessGrid(1, 7)
    assert ProcessGrid.square_ish(16) == ProcessGrid(4, 4)


@pytest.mark.parametrize("pr,pc", [(1, 1), (2, 2), (2, 3)])
def test_scatter_gather_roundtrip(rng, pr, pc):
    A = rng.standard_normal((11, 7))
    grid = ProcessGrid(pr, pc)

    def prog(comm):
        D = DistDense.from_global(comm, grid, A)
        return D.to_global()

    out = run_spmd(grid.size, prog)
    for res in out["results"]:
        np.testing.assert_allclose(res, A, atol=1e-14)


def test_local_blocks_partition(rng):
    A = rng.standard_normal((9, 8))
    grid = ProcessGrid(2, 2)

    def prog(comm):
        D = DistDense.from_global(comm, grid, A)
        return D.local.size

    out = run_spmd(4, prog)
    assert sum(out["results"]) == A.size


@pytest.mark.parametrize("pr,pc", [(1, 2), (2, 2), (3, 2)])
def test_gemm_replicated_matches_numpy(rng, pr, pc):
    A = rng.standard_normal((10, 12))
    B = rng.standard_normal((12, 4))
    grid = ProcessGrid(pr, pc)

    def prog(comm):
        D = DistDense.from_global(comm, grid, A)
        return D.gemm_replicated(B)

    out = run_spmd(grid.size, prog)
    for res in out["results"]:
        np.testing.assert_allclose(res, A @ B, atol=1e-12)


def test_gemm_shape_mismatch(rng):
    A = rng.standard_normal((4, 5))
    grid = ProcessGrid(1, 2)

    def prog(comm):
        D = DistDense.from_global(comm, grid, A)
        D.gemm_replicated(np.zeros((4, 2)))

    with pytest.raises(DistributionError):
        run_spmd(2, prog)


def test_fro_norm_and_row_sums(rng):
    A = rng.standard_normal((8, 6))
    grid = ProcessGrid(2, 2)

    def prog(comm):
        D = DistDense.from_global(comm, grid, A)
        return D.fro_norm(), D.row_sums_of_squares()

    out = run_spmd(4, prog)
    for nrm, rows in out["results"]:
        assert nrm == pytest.approx(np.linalg.norm(A))
        np.testing.assert_allclose(rows, (A ** 2).sum(axis=1), atol=1e-12)


def test_scale_add(rng):
    A = rng.standard_normal((6, 6))
    grid = ProcessGrid(2, 1)

    def prog(comm):
        D1 = DistDense.from_global(comm, grid, A)
        D2 = DistDense.from_global(comm, grid, A)
        D1.scale(2.0).add(D2)
        return D1.to_global()

    out = run_spmd(2, prog)
    np.testing.assert_allclose(out["results"][0], 3 * A, atol=1e-13)


def test_grid_comm_size_mismatch(rng):
    A = rng.standard_normal((4, 4))

    def prog(comm):
        DistDense.from_global(comm, ProcessGrid(2, 2), A)

    with pytest.raises(DistributionError):
        run_spmd(2, prog)


def test_wrong_local_shape(rng):
    grid = ProcessGrid(1, 1)

    def prog(comm):
        DistDense(comm, grid, (4, 4), np.zeros((2, 2)))

    with pytest.raises(DistributionError):
        run_spmd(1, prog)
