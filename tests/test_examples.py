"""Smoke tests: the example scripts run end to end.

Only the fast examples run in the default suite; the heavier studies are
covered by the benchmark harness which exercises the same code paths.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"
SRC = Path(__file__).parent.parent / "src"


def example_env() -> dict:
    """Environment with an absolute src/ on PYTHONPATH.

    The suite is usually launched with a *relative* ``PYTHONPATH=src``,
    which stops resolving as soon as a subprocess runs with a different
    cwd — so always prepend the absolute path.
    """
    env = dict(os.environ)
    prior = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = str(SRC) + (os.pathsep + prior if prior else "")
    return env


def run_example(name: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout, env=example_env())
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart_runs():
    out = run_example("quickstart.py")
    for token in ("RandQB_EI", "RandUBV", "LU_CRTP", "ILUT_CRTP",
                  "apply() check"):
        assert token in out
    # every method converged
    assert "NO" not in out


def test_lowrank_solver_runs():
    out = run_example("lowrank_solver.py")
    assert "pseudo_solve residual" in out
    assert "reloaded factors give identical solve: True" in out


def test_graph_embedding_runs():
    out = run_example("graph_embedding.py")
    assert "Automatic embedding dimension" in out
    assert "OK" in out


@pytest.mark.parametrize("name", [
    "circuit_model_reduction.py",
    "fillin_and_thresholding.py",
    "structural_min_rank.py",
    "parallel_scaling_study.py",
])
def test_heavier_examples_importable(name):
    """The heavier examples at least parse and expose main()."""
    import ast
    tree = ast.parse((EXAMPLES / name).read_text())
    funcs = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in funcs


def test_full_reproduction_runs(tmp_path):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "full_reproduction.py")],
        capture_output=True, text=True, timeout=400, cwd=tmp_path,
        env=example_env())
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "Table II block" in proc.stdout
    assert (tmp_path / "reproduction_report.md").exists()
