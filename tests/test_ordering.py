"""Tests for repro.ordering (COLAMD, column etree, postorder, RCM)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ordering.colamd import colamd
from repro.ordering.etree import col_etree, colamd_preprocess, postorder
from repro.ordering.rcm import rcm
from repro.matrices.generators import grid_stiffness


def is_permutation(p, n):
    return sorted(np.asarray(p).tolist()) == list(range(n))


def qr_fill(A):
    """nnz of the R factor of a QR of A (the fill COLAMD targets)."""
    _, R = np.linalg.qr(A.toarray() if sp.issparse(A) else A)
    return int(np.sum(np.abs(R) > 1e-12))


def test_colamd_is_permutation(small_sparse):
    p = colamd(small_sparse)
    assert is_permutation(p, 60)


def test_colamd_reduces_fill_on_grid():
    A = grid_stiffness(8, 8, seed=1)
    p = colamd(A)
    assert qr_fill(A[:, p]) <= qr_fill(A)  # AMD should not hurt a grid


def test_colamd_beats_reverse_ordering():
    # dense-column arrow: eliminating the dense column first makes the R
    # factor dense; min-degree must push it (near-)last
    n = 30
    D = np.eye(n)
    D[:, 0] = 1.0
    A = sp.csc_matrix(D)
    p = colamd(A)
    # the dense column is kept to the very end (ties at the tail may order
    # it second-to-last)
    assert int(np.flatnonzero(p == 0)[0]) >= n - 2
    assert qr_fill(A[:, p]) < qr_fill(A)


def test_colamd_empty_and_tiny():
    assert colamd(sp.csc_matrix((0, 0))).size == 0
    p = colamd(sp.identity(3, format="csc"))
    assert is_permutation(p, 3)


def test_colamd_deterministic(small_sparse):
    np.testing.assert_array_equal(colamd(small_sparse), colamd(small_sparse))


def test_col_etree_matches_ata_etree(small_sparse):
    """Column etree of A == etree of A^T A (computed by definition)."""
    parent = col_etree(small_sparse)
    G = (small_sparse.T @ small_sparse).toarray()
    # reference etree of the symmetric matrix G via the standard algorithm
    n = G.shape[0]
    ref = np.full(n, -1)
    anc = np.full(n, -1)
    for k in range(n):
        for i in np.flatnonzero(G[:k, k] != 0):
            while i != -1 and i < k:
                nxt = anc[i]
                anc[i] = k
                if nxt == -1:
                    ref[i] = k
                i = nxt
    np.testing.assert_array_equal(parent, ref)


def test_col_etree_diagonal():
    parent = col_etree(sp.identity(5, format="csc"))
    np.testing.assert_array_equal(parent, [-1] * 5)


def test_postorder_is_valid():
    #      4
    #     / \
    #    2   3
    #   / \
    #  0   1
    parent = np.array([2, 2, 4, 4, -1])
    order = postorder(parent)
    pos = np.empty(5, dtype=int)
    pos[order] = np.arange(5)
    for v, p in enumerate(parent):
        if p != -1:
            assert pos[v] < pos[p], "child must precede parent"


def test_postorder_forest():
    parent = np.array([-1, 0, -1, 2])
    order = postorder(parent)
    assert is_permutation(order, 4)


def test_postorder_invalid_cycle():
    with pytest.raises(ValueError):
        postorder(np.array([1, 0]))  # 2-cycle is not a forest


def test_colamd_preprocess_is_permutation(small_sparse):
    p = colamd_preprocess(small_sparse)
    assert is_permutation(p, 60)


def test_rcm_is_permutation(small_sparse):
    p = rcm(small_sparse)
    assert is_permutation(p, 60)


def test_rcm_reduces_bandwidth():
    rng = np.random.default_rng(0)
    # a random permutation of a banded matrix: RCM should recover low band
    n = 40
    B = sp.diags([np.ones(n - 1), np.ones(n), np.ones(n - 1)],
                 [-1, 0, 1]).tocsc()
    perm = rng.permutation(n)
    A = B[perm][:, perm].tocsc()
    p = rcm(A)
    Ap = A[p][:, p].toarray()
    rows, cols = np.nonzero(Ap)
    bw = int(np.max(np.abs(rows - cols)))
    assert bw <= 3


def test_rcm_rectangular(tall_sparse):
    p = rcm(tall_sparse)
    assert is_permutation(p, 40)


def test_nested_dissection_is_permutation(small_sparse):
    from repro.ordering.nested_dissection import nested_dissection
    p = nested_dissection(small_sparse, min_size=8)
    assert is_permutation(p, 60)


def test_nested_dissection_on_grid_reduces_fill():
    from repro.ordering.nested_dissection import nested_dissection
    A = grid_stiffness(10, 10, seed=2)
    p = nested_dissection(A, min_size=8)
    assert qr_fill(A[:, p].toarray()) <= qr_fill(A.toarray())


def test_nested_dissection_small_and_empty():
    from repro.ordering.nested_dissection import nested_dissection
    import scipy.sparse as _sp
    assert nested_dissection(_sp.csc_matrix((0, 0))).size == 0
    p = nested_dissection(_sp.identity(5, format="csc"), min_size=2)
    assert is_permutation(p, 5)


def test_nested_dissection_deterministic(small_sparse):
    from repro.ordering.nested_dissection import nested_dissection
    p1 = nested_dissection(small_sparse, min_size=8)
    p2 = nested_dissection(small_sparse, min_size=8)
    np.testing.assert_array_equal(p1, p2)
