/* Fixture header for KERN002 — see bindings.py for the drift matrix. */
#ifndef FIX_TYPES_H
#define FIX_TYPES_H
#include <stdint.h>
#define RK_EXPORT __attribute__((visibility("default")))

RK_EXPORT void rk_fix_scatter(
    int64_t n, const int64_t *idx, double *x);
RK_EXPORT int64_t rk_fix_dot(
    int64_t n, const double *x, const double *y, double *out);

#endif
