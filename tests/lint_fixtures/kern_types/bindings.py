"""Type-contract drift fixture for KERN002.

``rk_fix_scatter`` reads a void C return as int64; ``rk_fix_dot`` binds
a ``double*`` as an integer pointer and a ``double*`` out-param as a
scalar.
"""

_ABI = {
    "rk_fix_scatter": ("i64", ("i64", "i64*", "f64*")),  # expect: KERN002
    "rk_fix_dot": ("i64", ("i64", "i64*", "f64*", "f64")),  # expect: KERN002
}
