"""SPMD003 fixtures — determinism violations inside SPMD kernels.

This file is *not* a hot-path module, so the rule only applies to
functions whose first parameter is a communicator.  Linted by
``tests/test_lint.py``; every line tagged ``# expect: CODE`` must be
flagged with exactly that code on exactly that line, and no other line
may be flagged.  Never imported (no ``test_`` prefix).
"""


def clean_kernel(comm, A, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(4)
    t0 = time.perf_counter()  # elapsed-time reporting is fine
    y = comm.allreduce_sum(x)
    return y, time.perf_counter() - t0


def wall_clock_kernel(comm, A):
    t0 = time.time()  # expect: SPMD003
    comm.barrier_sync()
    return t0


def legacy_global_rng_kernel(comm, n):
    x = np.random.rand(n)  # expect: SPMD003
    return comm.allreduce_sum(x)


def unseeded_rng_kernel(comm):
    return np.random.default_rng()  # expect: SPMD003


def stdlib_random_kernel(comm, items):
    pick = random.choice(items)  # expect: SPMD003
    return comm.bcast(pick, root=0)


def set_iteration_kernel(comm, cols):
    for c in {1, 2, 3}:  # expect: SPMD003
        cols.append(c)
    comm.barrier_sync()
    return cols


def set_comprehension_kernel(comm, names):
    out = [n for n in set(names)]  # expect: SPMD003
    return comm.gather(out, root=0)


def suppressed_kernel(comm):
    stamp = time.time()  # repro: noqa[SPMD003]
    comm.barrier_sync()
    return stamp


def helper_without_comm(items):
    # not an SPMD kernel and not a hot-path module: unchecked
    return random.choice(items)
