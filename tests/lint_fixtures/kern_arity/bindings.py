# expect: KERN001 — rk_fix_orphan exported by kernels.h but unbound
"""Coverage/arity drift fixture for KERN001."""

_ABI = {
    "rk_fix_axpy": ("i64", ("i64", "f64*", "f64*")),  # expect: KERN001
    "rk_fix_ghost": ("i64", ("i64",)),  # expect: KERN001
}
