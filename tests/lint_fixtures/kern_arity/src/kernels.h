/* Fixture header for KERN001: rk_fix_axpy has one more parameter than
 * the _ABI entry declares; rk_fix_orphan is exported but never bound;
 * rk_fix_ghost is bound but never declared. */
#ifndef FIX_ARITY_H
#define FIX_ARITY_H
#include <stdint.h>
#define RK_EXPORT __attribute__((visibility("default")))

RK_EXPORT int64_t rk_fix_axpy(
    int64_t n, const double *x, double *y, double alpha);
RK_EXPORT void rk_fix_orphan(int64_t n, double *x);

#endif
