"""SPMD004 fixtures — direct native-tier imports outside the registry.

This file does not live under ``repro/kernels/``, so every spelling of a
``repro.kernels.native`` import must be flagged.  Linted by
``tests/test_lint.py``; every line tagged ``# expect: CODE`` must be
flagged with exactly that code on exactly that line, and no other line
may be flagged.  Never imported (no ``test_`` prefix).
"""

import repro.kernels.native  # expect: SPMD004
import repro.kernels.native.build as native_build  # expect: SPMD004
from repro.kernels.native import spgemm_csr  # expect: SPMD004
from repro.kernels.native.build import find_compiler  # expect: SPMD004
from repro.kernels import native  # expect: SPMD004
from ..kernels import native as native_mod  # expect: SPMD004
from ..kernels.native import build  # expect: SPMD004

# the dispatch surface is the sanctioned route
from repro import kernels
from repro.kernels import spgemm_csr as dispatch_spgemm
from repro.kernels import tiers
from repro.kernels.tiers import resolve_tier

# suppression works like every other rule
from repro.kernels import native as probed  # repro: noqa[SPMD004]


def uses_dispatch(A, B):
    tier = kernels.resolve_tier("auto")
    return kernels.spgemm_csr(A, B, tier=tier)
