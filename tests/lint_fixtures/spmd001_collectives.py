"""SPMD001 fixtures — collective-order violations.

Linted by ``tests/test_lint.py``; every line tagged ``# expect: CODE``
must be flagged with exactly that code on exactly that line, and no
other line may be flagged.  The functions here are never imported or
executed (no ``test_`` prefix), so the undefined helper names are fine.
"""


def clean_kernel(comm, A):
    total = comm.allreduce_sum(A.sum())
    comm.barrier_sync()
    return total


def branch_collective(comm, A):
    if comm.rank == 0:
        comm.bcast(A, root=0)  # expect: SPMD001
    return A


def else_branch_collective(comm, A):
    if comm.rank == 0:
        prepped = A
    else:
        prepped = comm.bcast(None, root=0)  # expect: SPMD001
    return prepped


def while_collective(comm, n):
    while comm.rank < n:
        n = comm.allreduce_sum(n)  # expect: SPMD001
    return n


def loop_over_rank_iterable(comm, blocks):
    for b in blocks[comm.rank:]:
        comm.gather(b, root=0)  # expect: SPMD001


def early_return_skips_collective(comm, A):
    if comm.rank > 0:
        return None  # expect: SPMD001
    return comm.bcast(A, root=0)


def rank_break_in_collective_loop(comm, chunks):
    total = 0.0
    for c in chunks:
        if comm.rank == 1:
            break  # expect: SPMD001
        total += comm.allreduce_sum(c)
    return total


def collective_in_test_is_fine(comm, A):
    if comm.allreduce_sum(A.nnz) > 0:
        A = A * 2.0
    return A


def suppressed_branch_collective(comm, A):
    if comm.rank == 0:
        comm.bcast(A, root=0)  # repro: noqa[SPMD001]
    return A


def not_a_kernel(mesh, rank):
    # first parameter is not a communicator: the rule skips this scope
    if rank == 0:
        mesh.bcast(mesh)
    return mesh
