"""Clean ABI fixture: _ABI matches src/kernels.h exactly (no findings)."""

_ABI = {
    "rk_fix_scale": ("i64", ("i64", "IDX*", "f64*", "f64")),
    "rk_fix_mask": (None, ("i64", "u8*", "f64*")),
}
