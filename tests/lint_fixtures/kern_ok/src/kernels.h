/* Fixture header for the KERN ABI rules — matches bindings.py exactly,
 * so the kern_ok scenario must produce zero findings. */
#ifndef FIX_OK_H
#define FIX_OK_H
#include <stdint.h>
#define RK_EXPORT __attribute__((visibility("default")))

RK_EXPORT int64_t rk_fix_scale_i32(
    int64_t n, const int32_t *idx, double *x, double alpha);
RK_EXPORT int64_t rk_fix_scale_i64(
    int64_t n, const int64_t *idx, double *x, double alpha);
RK_EXPORT void rk_fix_mask(int64_t n, unsigned char *mask, double *out);

#endif
