/* Fixture header for KERN003 — the _i32 gather takes int64_t indices
 * (width drift) and rk_fix_tag mixes signedness and a non-fixed-width
 * `long`. */
#ifndef FIX_WIDTH_H
#define FIX_WIDTH_H
#include <stdint.h>
#define RK_EXPORT __attribute__((visibility("default")))

RK_EXPORT int64_t rk_fix_gather_i32(
    int64_t n, const int64_t *idx, double *x);
RK_EXPORT int64_t rk_fix_gather_i64(
    int64_t n, const int64_t *idx, double *x);
RK_EXPORT int64_t rk_fix_tag(
    int64_t n, signed char *tag, long stride);

#endif
