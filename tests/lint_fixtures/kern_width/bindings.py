"""Index-width/signedness drift fixture for KERN003.

The header's ``rk_fix_gather_i32`` instantiation takes ``int64_t*``
indices (a crossed-width instantiation); ``rk_fix_tag`` pairs a signed
``signed char*`` with the unsigned ``u8*`` token and uses non-fixed-width
``long`` for a count.
"""

_ABI = {
    "rk_fix_gather": ("i64", ("i64", "IDX*", "f64*")),  # expect: KERN003
    "rk_fix_tag": ("i64", ("i64", "u8*", "i64")),  # expect: KERN003
}
