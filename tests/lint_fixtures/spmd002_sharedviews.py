"""SPMD002 fixtures — shared-view mutation violations.

Linted by ``tests/test_lint.py``; every line tagged ``# expect: CODE``
must be flagged with exactly that code on exactly that line, and no
other line may be flagged.  Never imported (no ``test_`` prefix), so
the undefined names (``csr_row_window``, ``np``, ...) are fine.
"""


def clean_private_copy(shm, rank, nprocs):
    block = csr_row_window(shm.matrix, rank, nprocs)
    mine = copy_for_write(block)
    mine.data *= 2.0
    mine[0, 0] = 1.0
    return mine


def aug_assign_through_view(shm, rank, nprocs):
    block = csr_row_window(shm.matrix, rank, nprocs)
    block.data *= 2.0  # expect: SPMD002
    return block


def element_assign_through_attach(shm):
    A = shm.attach()
    A.data[0] = 0.0  # expect: SPMD002
    return A


def alias_and_slice_propagate_taint(M, rank, nprocs):
    view = own_row_block(M, rank, nprocs)
    alias = view
    sub = alias.data[2:8]
    sub[0] = 7.0  # expect: SPMD002
    return sub


def mutating_method_on_view(M, rank, nprocs):
    view = own_row_block(M, rank, nprocs)
    view.sort_indices()  # expect: SPMD002
    return view


def ufunc_out_into_view(M, rank, nprocs):
    view = own_row_block(M, rank, nprocs)
    np.multiply(view.data, 2.0, out=view.data)  # expect: SPMD002
    return view


def attribute_assign_on_view(M, rank, nprocs):
    view = own_row_block(M, rank, nprocs)
    view.data = np.zeros(3)  # expect: SPMD002
    return view


def arithmetic_clears_taint(M, rank, nprocs):
    view = own_row_block(M, rank, nprocs)
    fresh = view.data * 2.0
    fresh[0] = 1.0
    return fresh


def reassignment_clears_taint(M, rank, nprocs):
    block = own_row_block(M, rank, nprocs)
    block = np.zeros(4)
    block[0] = 1.0
    return block


def suppressed_mutation(M, rank, nprocs):
    view = own_row_block(M, rank, nprocs)
    view.data *= 0.5  # repro: noqa[SPMD002]
    return view
