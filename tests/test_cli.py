"""Tests for the command-line interface."""


import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_info(capsys):
    code, out = run_cli(capsys, "info", "--scale", "0.25")
    assert code == 0
    for label in ("M1", "M6", "raefsky3"):
        assert label in out


def test_solve_suite_label(capsys):
    code, out = run_cli(capsys, "solve", "M4", "--scale", "0.25",
                        "--method", "randqb", "-k", "16", "--tol", "1e-1")
    assert code == 0
    assert "converged" in out and "yes" in out


def test_solve_with_check(capsys):
    code, out = run_cli(capsys, "solve", "M4", "--scale", "0.25",
                        "--method", "lu", "-k", "16", "--tol", "1e-1",
                        "--check")
    assert code == 0
    assert "exact relative error" in out


def test_solve_ilut(capsys):
    code, out = run_cli(capsys, "solve", "M2", "--scale", "0.25",
                        "--method", "ilut", "-k", "8", "--tol", "1e-1",
                        "--estimated-iterations", "4")
    assert code == 0


def test_solve_unknown_method(capsys):
    with pytest.raises(SystemExit):
        main(["solve", "M1", "--method", "bogus"])


def test_solve_matrix_market_file(tmp_path, capsys):
    from repro.matrices import write_matrix_market
    from repro.matrices.generators import random_graded
    A = random_graded(80, 80, nnz_per_row=6, decay_rate=8.0, seed=1)
    path = tmp_path / "a.mtx"
    write_matrix_market(A, path)
    code, out = run_cli(capsys, "solve", str(path), "--method", "randqb",
                        "-k", "8", "--tol", "1e-1")
    assert code == 0
    assert "80x80" in out


def test_compare(capsys):
    code, out = run_cli(capsys, "compare", "M4", "--scale", "0.25",
                        "-k", "16", "--tol", "1e-1")
    assert code == 0
    for name in ("RandQB_EI", "RandUBV", "LU_CRTP", "ILUT_CRTP",
                 "ratio_NNZ"):
        assert name in out


def test_scaling(capsys):
    code, out = run_cli(capsys, "scaling", "M4", "--scale", "0.25",
                        "-k", "16", "--tol", "1e-1",
                        "--nprocs", "1,4,16")
    assert code == 0
    assert "saturates" in out
    assert "LU_CRTP" in out


def test_nonconverged_solve_exit_code(capsys):
    # absurdly tight tolerance on a tiny rank budget: deterministic path
    code, out = run_cli(capsys, "solve", "M1", "--scale", "0.25",
                        "--method", "randqb", "-k", "4", "--tol", "2e-1")
    assert code in (0, 1)  # informative: exit code reflects convergence
