"""Failure-injection tests for the §III-A breakdown modes.

Section III-A warns that thresholding can destroy rank ``K+1`` of the
perturbed matrix (bound (20) violated) and break ILUT_CRTP.  These tests
exercise that path: the direct singular-pivot unit test, and end-to-end
scenarios where the library must either raise the dedicated
:class:`RankDeficiencyBreakdown` or degrade *gracefully* (converge on the
consistent thresholded system / stop at the numerical rank) — never return
silently-wrong factors.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import ILUT_CRTP, LU_CRTP
from repro.exceptions import RankDeficiencyBreakdown


def test_compute_f_raises_on_singular_pivot():
    """The solve kernel itself: singular A11 with inconsistent A21."""
    solver = LU_CRTP(k=4, tol=1e-2)
    A11d = np.zeros((4, 4))
    A21 = sp.csc_matrix(np.ones((6, 4)))
    Qk = np.linalg.qr(np.random.default_rng(0).standard_normal((10, 4)))[0]
    with pytest.raises(RankDeficiencyBreakdown):
        solver._compute_F(A11d, A21, Qk, np.arange(10), 4, i=2)


def test_compute_f_orthogonal_raises_on_singular_q11():
    solver = LU_CRTP(k=3, tol=1e-2, l_formula="orthogonal")
    Qk = np.zeros((8, 3))  # Qbar11 singular
    A21 = sp.csc_matrix(np.ones((5, 3)))
    with pytest.raises(RankDeficiencyBreakdown):
        solver._compute_F(np.eye(3), A21, Qk, np.arange(8), 3, i=1)


def test_ilut_graceful_on_exactly_destroyed_rank():
    """Thresholding collapses the active matrix to exact low rank: the
    system stays *consistent*, so the factorization either terminates
    cleanly or flags the breakdown — and whatever it returns is accurate."""
    rng = np.random.default_rng(0)
    X = rng.standard_normal((40, 6))
    Y = rng.standard_normal((6, 40))
    A = sp.csc_matrix(X @ Y + 1e-10 * rng.standard_normal((40, 40)))
    try:
        res = ILUT_CRTP(k=4, tol=1e-12, mu=1e-6, phi_factor=1e12,
                        stop_at_numerical_rank=False,
                        use_colamd=False).solve(A)
    except RankDeficiencyBreakdown:
        return  # the documented failure mode — acceptable
    # graceful path: the result must be consistent with its own estimator
    # up to the perturbation mass (Section III-D bound)
    gap = abs(res.error(A) - res.relative_indicator()) * res.a_fro
    assert gap <= res.dropped_norm_bound() + 1e-6


def test_ilut_breakdown_reports_iteration():
    exc = RankDeficiencyBreakdown("boom", iteration=3, rank=12)
    assert exc.iteration == 3
    assert exc.rank == 12


def test_lu_numerical_rank_stop_on_exact_lowrank(rank_deficient):
    """LU_CRTP on an exactly rank-12 matrix with stop_at_numerical_rank:
    terminates at/near the numerical rank without error."""
    res = LU_CRTP(k=4, tol=1e-14).solve(rank_deficient)
    assert res.rank <= 16
    assert res.error(rank_deficient) < 1e-8


def test_lu_without_safeguard_still_terminates(rank_deficient):
    """Even with the safeguard off, the solver must terminate (graceful
    convergence on the consistent system or a raised breakdown)."""
    try:
        res = LU_CRTP(k=4, tol=1e-14,
                      stop_at_numerical_rank=False).solve(rank_deficient)
        assert res.rank <= 50
    except RankDeficiencyBreakdown:
        pass


def test_machine_precision_singular_values():
    """§III-A: 'If any of the singular values larger than sigma_{K+1} are
    smaller than machine precision, LU_CRTP may break down' — a spectrum
    plunging to 1e-300 must not produce non-finite factors."""
    rng = np.random.default_rng(1)
    U, _ = np.linalg.qr(rng.standard_normal((30, 30)))
    V, _ = np.linalg.qr(rng.standard_normal((30, 30)))
    s = np.concatenate([np.logspace(0, -3, 10), np.full(20, 1e-300)])
    A = sp.csc_matrix(U @ np.diag(s) @ V.T)
    try:
        res = LU_CRTP(k=4, tol=1e-13).solve(A)
        assert np.all(np.isfinite(res.L.data))
        assert np.all(np.isfinite(res.U.data))
    except RankDeficiencyBreakdown:
        pass
