"""Demonstration of Theorem 3 (Yu/Gu/Li): the randomized indicator's
double-precision floor.

The paper stresses that indicator (4) "fails in double precision floating
point arithmetic for tau < 2.1e-7" — while the deterministic indicator (9)
keeps working.  These tests demonstrate both halves of the claim on
concrete matrices, justifying the library's ToleranceTooSmallError guard.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import lu_crtp, randqb_ei
from repro.core.termination import RandErrorIndicator


def exactly_lowrank(rng, m=80, rank=12):
    X = rng.standard_normal((m, rank))
    Y = rng.standard_normal((rank, m))
    return sp.csc_matrix(X @ Y)


def test_indicator_unreliable_below_floor(rng):
    """Once the true error sits below ~sqrt(eps)*||A||, the subtraction in
    (4) is pure cancellation noise: the indicator's value differs from the
    true error by more than the tolerance it would be tested against."""
    A = exactly_lowrank(rng)
    tau = 1e-9
    res = randqb_ei(A, k=4, tol=tau, allow_unsafe_tolerance=True,
                    max_rank=40)
    true_rel = res.error(A)
    ind_rel = res.relative_indicator()
    # the two disagree at the tau scale (either could be the larger)
    assert abs(true_rel - ind_rel) > tau / 10 or res.history[-1].indicator \
        == 0.0


def test_indicator_underflow_flag(rng):
    """Driving the accumulator past zero sets the underflow flag — the
    mechanism behind Theorem 3."""
    A = exactly_lowrank(rng, m=40, rank=5)
    a2 = float(np.sum(A.toarray() ** 2))
    ind = RandErrorIndicator(a2)
    # subtract the exact decomposition, then one more epsilon-scale block:
    # round-off makes the running value negative
    Q, _ = np.linalg.qr(A.toarray())
    ind.update(Q[:, :5].T @ A.toarray())
    ind.update(np.full((1, 1), 1e-4 * np.sqrt(a2)))
    assert ind.underflowed
    assert ind.value == 0.0


def test_deterministic_indicator_survives_tiny_tolerances(rng):
    """Indicator (9) has no floor: LU_CRTP resolves tau = 1e-12 on an
    exactly low-rank matrix, and its indicator still equals the true
    error."""
    A = exactly_lowrank(rng)
    res = lu_crtp(A, k=4, tol=1e-12)
    assert res.converged
    assert res.error(A) == pytest.approx(res.relative_indicator(),
                                         abs=1e-12)
    assert res.relative_indicator() < 1e-12


def test_floor_constant_guards_default_api(small_sparse):
    from repro.exceptions import ToleranceTooSmallError
    with pytest.raises(ToleranceTooSmallError):
        randqb_ei(small_sparse, k=8, tol=2.0e-8)
    # exactly at the floor is allowed
    res = randqb_ei(small_sparse, k=8, tol=2.2e-7, max_rank=16)
    assert res.rank <= 16
