"""Tests for repro.serialize (result persistence)."""

import numpy as np
import pytest

from repro import ilut_crtp, lu_crtp, randqb_ei, randubv
from repro.serialize import load_result, save_result


def roundtrip(result, tmp_path):
    path = tmp_path / "res.npz"
    save_result(result, path)
    return load_result(path)


def test_qb_roundtrip(small_sparse, tmp_path):
    res = randqb_ei(small_sparse, k=8, tol=1e-2)
    back = roundtrip(res, tmp_path)
    np.testing.assert_array_equal(back.Q, res.Q)
    np.testing.assert_array_equal(back.B, res.B)
    assert back.rank == res.rank
    assert back.converged == res.converged
    assert back.indicator == res.indicator
    assert back.history.iterations == res.history.iterations
    assert back.error(small_sparse) == pytest.approx(res.error(small_sparse))


def test_ubv_roundtrip(small_sparse, tmp_path):
    res = randubv(small_sparse, k=8, tol=1e-2)
    back = roundtrip(res, tmp_path)
    np.testing.assert_array_equal(back.U, res.U)
    np.testing.assert_array_equal(back.Bmat, res.Bmat)
    np.testing.assert_array_equal(back.V, res.V)


def test_lu_roundtrip(small_sparse, tmp_path):
    res = lu_crtp(small_sparse, k=8, tol=1e-2)
    back = roundtrip(res, tmp_path)
    np.testing.assert_allclose(back.L.toarray(), res.L.toarray())
    np.testing.assert_allclose(back.U.toarray(), res.U.toarray())
    np.testing.assert_array_equal(back.row_perm, res.row_perm)
    np.testing.assert_array_equal(back.col_perm, res.col_perm)
    assert back.error(small_sparse) == pytest.approx(res.error(small_sparse))


def test_ilut_roundtrip_metadata(small_sparse, tmp_path):
    res = ilut_crtp(small_sparse, k=8, tol=1e-2, estimated_iterations=4)
    back = roundtrip(res, tmp_path)
    assert back.threshold == res.threshold
    assert back.dropped_norm == res.dropped_norm
    assert back.control_triggered == res.control_triggered
    drops = [r.dropped_nnz for r in back.history]
    assert drops == [r.dropped_nnz for r in res.history]


def test_history_round_trips(small_sparse, tmp_path):
    res = lu_crtp(small_sparse, k=8, tol=1e-2)
    back = roundtrip(res, tmp_path)
    for a, b in zip(res.history, back.history):
        assert a.indicator == b.indicator
        assert a.schur_shape == b.schur_shape


def test_unknown_type_raises(tmp_path):
    with pytest.raises(TypeError):
        save_result(object(), tmp_path / "x.npz")
