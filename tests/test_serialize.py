"""Tests for repro.serialize (result and checkpoint persistence)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import ilut_crtp, lu_crtp, randqb_ei, randubv
from repro.exceptions import CheckpointError
from repro.serialize import (
    load_checkpoint,
    load_result,
    resolve_checkpoint,
    save_checkpoint,
    save_result,
)


def roundtrip(result, tmp_path):
    path = tmp_path / "res.npz"
    save_result(result, path)
    return load_result(path)


def test_qb_roundtrip(small_sparse, tmp_path):
    res = randqb_ei(small_sparse, k=8, tol=1e-2)
    back = roundtrip(res, tmp_path)
    np.testing.assert_array_equal(back.Q, res.Q)
    np.testing.assert_array_equal(back.B, res.B)
    assert back.rank == res.rank
    assert back.converged == res.converged
    assert back.indicator == res.indicator
    assert back.history.iterations == res.history.iterations
    assert back.error(small_sparse) == pytest.approx(res.error(small_sparse))


def test_ubv_roundtrip(small_sparse, tmp_path):
    res = randubv(small_sparse, k=8, tol=1e-2)
    back = roundtrip(res, tmp_path)
    np.testing.assert_array_equal(back.U, res.U)
    np.testing.assert_array_equal(back.Bmat, res.Bmat)
    np.testing.assert_array_equal(back.V, res.V)


def test_lu_roundtrip(small_sparse, tmp_path):
    res = lu_crtp(small_sparse, k=8, tol=1e-2)
    back = roundtrip(res, tmp_path)
    np.testing.assert_allclose(back.L.toarray(), res.L.toarray())
    np.testing.assert_allclose(back.U.toarray(), res.U.toarray())
    np.testing.assert_array_equal(back.row_perm, res.row_perm)
    np.testing.assert_array_equal(back.col_perm, res.col_perm)
    assert back.error(small_sparse) == pytest.approx(res.error(small_sparse))


def test_ilut_roundtrip_metadata(small_sparse, tmp_path):
    res = ilut_crtp(small_sparse, k=8, tol=1e-2, estimated_iterations=4)
    back = roundtrip(res, tmp_path)
    assert back.threshold == res.threshold
    assert back.dropped_norm == res.dropped_norm
    assert back.control_triggered == res.control_triggered
    drops = [r.dropped_nnz for r in back.history]
    assert drops == [r.dropped_nnz for r in res.history]


def test_history_round_trips(small_sparse, tmp_path):
    res = lu_crtp(small_sparse, k=8, tol=1e-2)
    back = roundtrip(res, tmp_path)
    for a, b in zip(res.history, back.history):
        assert a.indicator == b.indicator
        assert a.schur_shape == b.schur_shape


def test_unknown_type_raises(tmp_path):
    with pytest.raises(TypeError):
        save_result(object(), tmp_path / "x.npz")


# ---------------------------------------------------------------------------
# Checkpoints
# ---------------------------------------------------------------------------

def test_checkpoint_roundtrip(tmp_path):
    A = sp.random(8, 5, density=0.4, format="csc", random_state=0)
    B = sp.random(4, 4, density=0.5, format="csr", random_state=1)
    state = {
        "kind": "demo", "iteration": 3, "ratio": 0.5, "flag": True,
        "nothing": None, "rng": {"state": {"pos": 12, "key": [1, 2]}},
        "vec": np.arange(6.0), "mat": A, "rowmat": B,
        "alist": [np.ones(2), np.zeros(3)],
        "slist": [A.tocsc(), B.tocsc()],
        "empty": [],
    }
    path = tmp_path / "ck.npz"
    save_checkpoint(path, state)
    got = load_checkpoint(path)
    assert got["kind"] == "demo"
    assert got["iteration"] == 3
    assert got["ratio"] == 0.5
    assert got["flag"] is True
    assert got["nothing"] is None
    assert got["rng"] == state["rng"]
    np.testing.assert_array_equal(got["vec"], state["vec"])
    assert got["mat"].format == "csc"
    assert got["rowmat"].format == "csr"  # storage format survives
    np.testing.assert_array_equal(got["mat"].toarray(), A.toarray())
    np.testing.assert_array_equal(got["rowmat"].toarray(), B.toarray())
    assert len(got["alist"]) == 2
    np.testing.assert_array_equal(got["alist"][0], np.ones(2))
    np.testing.assert_array_equal(got["slist"][1].toarray(), B.toarray())
    assert got["empty"] == []


def test_checkpoint_overwrite_is_atomic(tmp_path):
    path = tmp_path / "ck.npz"
    save_checkpoint(path, {"kind": "demo", "step": 1})
    save_checkpoint(path, {"kind": "demo", "step": 2})
    assert load_checkpoint(path)["step"] == 2
    assert list(tmp_path.glob("*.tmp*")) == []  # no half-written leftovers


def test_checkpoint_key_and_value_validation(tmp_path):
    with pytest.raises(CheckpointError, match="__"):
        save_checkpoint(tmp_path / "x.npz", {"bad__key": 1})
    with pytest.raises(CheckpointError, match="serializable"):
        save_checkpoint(tmp_path / "x.npz", {"obj": object()})


def test_checkpoint_missing_file(tmp_path):
    with pytest.raises(CheckpointError):
        load_checkpoint(tmp_path / "does-not-exist.npz")


def test_resolve_checkpoint_dict_passthrough(tmp_path):
    st = {"kind": "demo"}
    assert resolve_checkpoint(st) is st
    save_checkpoint(tmp_path / "ck.npz", st)
    assert resolve_checkpoint(tmp_path / "ck.npz")["kind"] == "demo"
    with pytest.raises(CheckpointError):
        resolve_checkpoint(None)
