"""Tests for repro.pivoting.select (one tournament match)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.pivoting.select import select_columns, selection_flops


def graded_block(rng, m=50, c=10, cond=1e6):
    U, _ = np.linalg.qr(rng.standard_normal((m, c)))
    V, _ = np.linalg.qr(rng.standard_normal((c, c)))
    s = np.logspace(0, -np.log10(cond), c)
    return U @ np.diag(s) @ V.T


def test_gram_and_dense_agree(rng):
    B = graded_block(rng, cond=1e4)
    Bs = sp.csc_matrix(B)
    g = select_columns(Bs, 4, method="gram")
    d = select_columns(Bs, 4, method="dense")
    assert set(g.winners.tolist()) == set(d.winners.tolist())


def test_winners_capture_dominant_columns(rng):
    B = rng.standard_normal((40, 8))
    B[:, 2] *= 1000
    B[:, 6] *= 500
    sel = select_columns(sp.csc_matrix(B), 2)
    assert set(sel.winners.tolist()) == {2, 6}


def test_selection_quality_vs_svd(rng):
    """Selected columns approximate the dominant subspace: the residual of
    projecting onto them is within a modest factor of the optimal."""
    B = graded_block(rng, m=60, c=12, cond=1e8)
    k = 4
    sel = select_columns(sp.csc_matrix(B), k)
    C = B[:, sel.winners]
    Q, _ = np.linalg.qr(C)
    resid = np.linalg.norm(B - Q @ (Q.T @ B), 2)
    s = np.linalg.svd(B, compute_uv=False)
    assert resid <= 20 * s[k]  # RRQR guarantee up to a polynomial factor


def test_k_larger_than_width(rng):
    B = sp.csc_matrix(rng.standard_normal((10, 3)))
    sel = select_columns(B, 7)
    assert sel.k == 3
    assert sorted(sel.winners.tolist()) == [0, 1, 2]


def test_empty_block():
    sel = select_columns(sp.csc_matrix((5, 0)), 3)
    assert sel.k == 0
    assert sel.order.size == 0


def test_rank_deficient_uses_fallback(rank_deficient):
    B = rank_deficient[:, :30]  # rank <= 12 < 30 columns
    sel = select_columns(B, 10)
    assert sel.used_fallback
    assert sel.winners.size == 10


def test_r_diag_estimates_two_norm(rng):
    B = graded_block(rng)
    sel = select_columns(sp.csc_matrix(B), 3)
    two_norm = np.linalg.norm(B, 2)
    # bound (23): R(1,1) <= ||B||_2, and for QRCP >= ||B||_2 / sqrt(c)
    assert sel.r_diag[0] <= two_norm + 1e-9
    assert sel.r_diag[0] >= two_norm / np.sqrt(B.shape[1]) - 1e-9


def test_strong_selection(rng):
    B = graded_block(rng)
    sel = select_columns(sp.csc_matrix(B), 4, strong=True)
    assert sel.winners.size == 4


def test_dense_input_accepted(rng):
    B = rng.standard_normal((20, 6))
    sel = select_columns(B, 3)
    assert sel.winners.size == 3


def test_invalid_method(rng):
    with pytest.raises(ValueError):
        select_columns(np.eye(4), 2, method="bogus")


def test_selection_flops_positive():
    assert selection_flops(100, 8) > 0
    assert selection_flops(100, 8, method="dense") > 0
    assert selection_flops(0, 1) > 0
