"""Tests for repro.core.randubv (block Golub-Kahan comparator)."""

import numpy as np
import pytest

from repro import RandUBV, randubv
from repro.exceptions import ToleranceTooSmallError


def test_converges_and_indicator_matches_error(small_sparse):
    res = randubv(small_sparse, k=8, tol=1e-2)
    assert res.converged
    assert res.relative_indicator() < 1e-2
    assert res.error(small_sparse) == pytest.approx(
        res.relative_indicator(), rel=1e-4)


def test_factors_orthonormal(small_sparse):
    res = randubv(small_sparse, k=8, tol=1e-2)
    K = res.U.shape[1]
    nV = res.V.shape[1]
    assert np.linalg.norm(res.U.T @ res.U - np.eye(K)) < 1e-8
    assert np.linalg.norm(res.V.T @ res.V - np.eye(nV)) < 1e-8


def test_b_is_block_bidiagonal(small_sparse):
    res = RandUBV(k=4, tol=1e-2).solve(small_sparse)
    B = res.Bmat
    k = 4
    nb = B.shape[0] // k
    for i in range(nb):
        for j in range(B.shape[1] // k):
            blk = B[i * k:(i + 1) * k, j * k:(j + 1) * k]
            if j < i or j > i + 1:
                assert np.allclose(blk, 0.0), (i, j)


def test_b_equals_ut_a_v(small_sparse):
    res = randubv(small_sparse, k=8, tol=1e-2)
    Bref = res.U.T @ small_sparse.toarray() @ res.V
    np.testing.assert_allclose(res.Bmat, Bref, atol=1e-7)


def test_fewer_or_equal_iterations_than_randqb_p0(rng):
    """The Table II trend: its_UBV <= its_p0 (UBV's two-sided products act
    like a half power iteration)."""
    from repro import randqb_ei
    from repro.matrices.generators import random_graded
    A = random_graded(150, 150, nnz_per_row=8, decay_rate=3.0, seed=4)
    ubv = randubv(A, k=8, tol=1e-2)
    qb0 = randqb_ei(A, k=8, tol=1e-2, power=0)
    assert ubv.iterations <= qb0.iterations


def test_seed_reproducibility(small_sparse):
    r1 = randubv(small_sparse, k=8, tol=1e-2, seed=3)
    r2 = randubv(small_sparse, k=8, tol=1e-2, seed=3)
    np.testing.assert_array_equal(r1.U, r2.U)


def test_rectangular(rng):
    from repro.matrices.generators import random_graded
    A = random_graded(90, 50, nnz_per_row=5, decay_rate=5.0, seed=8)
    res = randubv(A, k=6, tol=1e-2)
    assert res.converged
    assert res.error(A) < 1e-2


def test_tolerance_floor(small_sparse):
    with pytest.raises(ToleranceTooSmallError):
        randubv(small_sparse, k=8, tol=1e-9)


def test_max_rank_cap(small_sparse):
    res = randubv(small_sparse, k=8, tol=1e-6, max_rank=16)
    assert res.rank <= 16


def test_invalid_k():
    with pytest.raises(ValueError):
        RandUBV(k=0)


def test_factor_nnz_counts_all_three(small_sparse):
    res = randubv(small_sparse, k=8, tol=1e-2)
    assert res.factor_nnz() == res.U.size + res.Bmat.size + res.V.size
