"""Kernel tier registry, JIT build cache, and the bitwise-parity contract.

Three layers of coverage for :mod:`repro.kernels`:

- **Registry semantics** that must hold on *every* host, compiler or not:
  request validation, ``auto`` resolution (env override, stat-probe-only
  cache check), the graceful ``native -> pure`` fallback when no compiler
  exists, cache-key provenance and result provenance.
- **Build cache** behaviour (``REPRO_KERNEL_CACHE``): a cold cache means
  ``auto`` stays pure without compiling anything; an explicit ``native``
  request builds once and reuses; a source edit changes the hash and
  forces a rebuild instead of reusing the stale library.
- **Bitwise parity** of every native kernel against the pure tier
  (skipped when the host cannot build): same values, same index arrays,
  same dtypes, same signed zeros — plus end-to-end solver, SPMD and
  thread-safety checks.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
import scipy.sparse as sp

from repro import kernels
from repro.core.ilut_crtp import ILUT_CRTP
from repro.core.lu_crtp import LU_CRTP
from repro.core.randqb_ei import RandQB_EI
from repro.kernels import native, pure, tiers
from repro.kernels.native import build
from repro.parallel.spmd import run_spmd_solver
from repro.sparse.spgemm import SpGEMMWorkspace

HAS_NATIVE = kernels.native_available()
needs_native = pytest.mark.skipif(
    not HAS_NATIVE, reason="no C compiler / native kernel build unavailable")

SENT = np.iinfo(np.int64).max


@pytest.fixture(autouse=True)
def tier_state():
    """Re-probe tier state after every test: several tests monkeypatch the
    compiler discovery or the cache location, and the memoized load must
    not leak into the next test."""
    yield
    kernels.reset()


def _m2_analogue(n, seed=1, density=0.02):
    rng = np.random.default_rng(seed)
    A = sp.random(n, n, density=density, random_state=rng, format="csc")
    return (A + sp.diags(np.linspace(1, 0.01, n), format="csc")).tocsc()


def _pair(n, m, seed, pow2=False):
    """Random canonical-CSR operand pair; ``pow2`` draws values from exact
    powers of two so products cancel to exact zero often (the scipy
    semantics the native tier must replicate include dropping those)."""
    rng = np.random.default_rng(seed)
    if pow2:
        def rvs(size):
            return (2.0 ** rng.integers(-2, 3, size)
                    * rng.choice([-1.0, 1.0], size))
    else:
        rvs = rng.standard_normal
    A = sp.random(n, m, density=0.25, random_state=rng, data_rvs=rvs,
                  format="csr")
    B = sp.random(m, n, density=0.25, random_state=rng, data_rvs=rvs,
                  format="csr")
    return A, B


def _assert_bitwise_csr(C1, C2):
    assert C1.shape == C2.shape
    assert C1.indptr.dtype == C2.indptr.dtype
    assert C1.indices.dtype == C2.indices.dtype
    assert np.array_equal(C1.indptr, C2.indptr)
    assert np.array_equal(C1.indices, C2.indices)
    assert C1.data.dtype == C2.data.dtype == np.float64
    # view as bits: distinguishes -0.0 from +0.0, NaN payloads included
    assert np.array_equal(C1.data.view(np.uint64), C2.data.view(np.uint64))


# -- registry semantics (run everywhere) -------------------------------------

def test_validate_request():
    for req in ("auto", "pure", "native", "  NATIVE "):
        assert tiers.validate_request(req) in kernels.TIER_REQUESTS
    with pytest.raises(ValueError, match="unknown kernel tier"):
        tiers.validate_request("fast")


def test_config_rejects_unknown_tier():
    with pytest.raises(ValueError, match="unknown kernel tier"):
        LU_CRTP(k=8, kernel_tier="bogus")


def test_resolve_env_override(monkeypatch):
    monkeypatch.setenv(kernels.TIER_ENV, "pure")
    assert kernels.resolve_tier("auto") == "pure"
    assert kernels.resolve_tier(None) == "pure"
    # an explicit request always beats the environment
    assert kernels.resolve_tier("pure") == "pure"
    monkeypatch.setenv(kernels.TIER_ENV, "bogus")
    with pytest.raises(ValueError, match="unknown kernel tier"):
        kernels.resolve_tier("auto")


def test_auto_cold_cache_stays_pure_without_compiling(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
    monkeypatch.delenv(kernels.TIER_ENV, raising=False)
    kernels.reset()
    assert kernels.resolve_tier("auto") == "pure"
    # the auto probe is a stat call, never a build
    assert list(tmp_path.iterdir()) == []


def test_native_request_falls_back_without_compiler(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
    monkeypatch.setattr(build, "find_compiler", lambda: None)
    kernels.reset()
    assert not kernels.native_available()
    assert "compiler" in (build.last_error or "")
    with pytest.warns(RuntimeWarning, match="falling back to 'pure'"):
        assert kernels.resolve_tier("native") == "pure"
    # the warning is one-time; later resolutions stay silent
    assert kernels.resolve_tier("native") == "pure"


def test_solve_succeeds_without_compiler(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
    monkeypatch.setattr(build, "find_compiler", lambda: None)
    kernels.reset()
    A = _m2_analogue(80)
    with pytest.warns(RuntimeWarning, match="falling back to 'pure'"):
        r = LU_CRTP(k=8, tol=1e-2, max_rank=32, raise_on_failure=False,
                    kernel_tier="native").solve(A)
    assert r.kernel_tier == "pure"


def test_dispatch_falls_back_per_call_without_compiler(tmp_path, monkeypatch):
    # a resolved-tier dispatch call degrades per call (no warning — the
    # resolve step owns the one-time warning) and stays bitwise correct
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
    monkeypatch.setattr(build, "find_compiler", lambda: None)
    kernels.reset()
    A, B = _pair(40, 24, seed=3)
    ref = pure.spgemm_csr(A, B)
    C = kernels.spgemm_csr(A, B, tier="native")
    _assert_bitwise_csr(sp.csr_matrix(ref), sp.csr_matrix(C))


def test_cache_key_includes_tier():
    from repro.api.config import SolverConfig
    keys = {SolverConfig(k=8, kernel_tier=t).cache_key()
            for t in kernels.TIER_REQUESTS}
    assert len(keys) == len(kernels.TIER_REQUESTS)


def test_result_records_resolved_tier():
    A = _m2_analogue(80)
    r = LU_CRTP(k=8, tol=1e-2, max_rank=32, raise_on_failure=False,
                kernel_tier="pure").solve(A)
    assert r.kernel_tier == "pure"
    assert r.to_json()["kernel_tier"] == "pure"


def test_record_tier_counts(monkeypatch):
    from repro import perf
    perf.enable()
    try:
        assert tiers.record_tier("pure") == "pure"
        assert perf.get_recorder().counters.get("kernel_tier.pure", 0) >= 1
    finally:
        perf.disable()


# -- build cache -------------------------------------------------------------

@needs_native
def test_build_cache_reuse_and_stale_rebuild(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
    kernels.reset()
    assert not native.cached_build_exists()
    assert kernels.native_available()        # compiles into the tmp cache
    assert native.cached_build_exists()

    def lib_dirs():
        return sorted(p.name for p in tmp_path.iterdir() if p.is_dir())

    first = lib_dirs()
    assert len(first) == 1
    # warm reload: same hash, no second build directory
    kernels.reset()
    assert kernels.native_available()
    assert lib_dirs() == first

    # a source edit changes the hash: the stale library must not be reused
    extra = tmp_path / "extra_source_tweak.h"
    extra.write_text("/* simulated source edit */\n")
    real = build.source_files()
    monkeypatch.setattr(build, "source_files",
                        lambda src_dir=None: real + [extra])
    kernels.reset()
    assert not native.cached_build_exists()
    assert kernels.native_available()        # rebuilds under the new hash
    assert len(lib_dirs()) == 2


@needs_native
def test_auto_resolves_native_on_warm_cache(monkeypatch):
    monkeypatch.delenv(kernels.TIER_ENV, raising=False)
    kernels.reset()
    assert kernels.native_available()
    assert kernels.resolve_tier("auto") == "native"
    assert kernels.available_tiers() == kernels.TIERS


# -- per-kernel bitwise parity ----------------------------------------------

@needs_native
@pytest.mark.parametrize("seed,pow2", [(0, False), (1, True), (2, True)])
def test_spgemm_parity(seed, pow2):
    A, B = _pair(60, 40, seed=seed, pow2=pow2)
    ref = sp.csr_matrix(pure.spgemm_csr(A, B))
    C = sp.csr_matrix(kernels.spgemm_csr(A, B, tier="native"))
    _assert_bitwise_csr(ref, C)


@needs_native
def test_spgemm_parity_int64_indices():
    from repro.sparse.utils import raw_csr
    A, B = _pair(50, 30, seed=4)
    A64 = raw_csr(A.data, A.indices.astype(np.int64),
                  A.indptr.astype(np.int64), A.shape)
    B64 = raw_csr(B.data, B.indices.astype(np.int64),
                  B.indptr.astype(np.int64), B.shape)
    ref = pure.spgemm_csr(A64, B64)
    C = kernels.spgemm_csr(A64, B64, tier="native")
    assert C.indices.dtype == ref.indices.dtype
    _assert_bitwise_csr(sp.csr_matrix(ref), sp.csr_matrix(C))


@needs_native
def test_spgemm_parity_exact_cancellation():
    # one dense row of +-1 against two identical B rows: every product
    # cancels to exact zero and must be dropped, exactly like scipy
    A = sp.csr_matrix(np.array([[1.0, -1.0]]))
    row = np.array([[0.5, 0.0, -2.0, 0.25]])
    B = sp.csr_matrix(np.vstack([row, row]))
    ref = sp.csr_matrix(pure.spgemm_csr(A, B))
    C = sp.csr_matrix(kernels.spgemm_csr(A, B, tier="native"))
    assert ref.nnz == 0
    _assert_bitwise_csr(ref, C)


@needs_native
def test_threshold_parity():
    rng = np.random.default_rng(7)
    S = sp.random(120, 120, density=0.3, random_state=rng, format="csc")
    mu = 0.3
    Mp, Mn = S.copy(), S.copy()
    mask_p, nnz_p, sq_p, mx_p = kernels.threshold_mask(Mp, mu, tier="pure")
    mask_n, nnz_n, sq_n, mx_n = kernels.threshold_mask(Mn, mu, tier="native")
    assert np.array_equal(np.asarray(mask_p, bool), np.asarray(mask_n, bool))
    assert nnz_p == nnz_n and sq_p == sq_n and mx_p == mx_n
    kernels.apply_threshold_mask(Mp, mask_p, tier="pure")
    kernels.apply_threshold_mask(Mn, mask_n, tier="native")
    assert np.array_equal(Mp.indptr, Mn.indptr)
    assert np.array_equal(Mp.indices, Mn.indices)
    assert np.array_equal(Mp.data.view(np.uint64), Mn.data.view(np.uint64))


@needs_native
def test_window_parity():
    A = _m2_analogue(150, seed=9, density=0.05)
    rng = np.random.default_rng(10)
    col_perm, row_perm = rng.permutation(150), rng.permutation(150)
    k = 24
    blocks_p = kernels.permuted_blocks(A, col_perm, row_perm, k, tier="pure")
    blocks_n = kernels.permuted_blocks(A, col_perm, row_perm, k,
                                       tier="native")
    assert np.array_equal(blocks_p[0], blocks_n[0])     # dense A11
    for P, N in zip(blocks_p[1:], blocks_n[1:]):
        _assert_bitwise_csr(sp.csr_matrix(P), sp.csr_matrix(N))


@needs_native
def test_pivot_parity_with_ties():
    rng = np.random.default_rng(11)
    for n in (1, 7, 64, 513):
        master = rng.integers(0, 5, size=n, dtype=np.int64)  # many ties
        kp, kn = master.copy(), master.copy()
        for _ in range(n):
            p = kernels.pivot_argmin_consume(kp, SENT, tier="pure")
            q = kernels.pivot_argmin_consume(kn, SENT, tier="native")
            assert p == q                    # first-minimum tie semantics
        assert np.array_equal(kp, kn)
        assert (kp == SENT).all()            # every winner retired


@needs_native
def test_pivot_cap_delegates_to_numpy():
    n = native._PIVOT_SCAN_CAP + 1
    rng = np.random.default_rng(12)
    master = rng.integers(0, n, size=n, dtype=np.int64)
    kp, kn = master.copy(), master.copy()
    assert (kernels.pivot_argmin_consume(kp, SENT, tier="pure")
            == kernels.pivot_argmin_consume(kn, SENT, tier="native"))
    assert np.array_equal(kp, kn)


@needs_native
def test_pivot_identity_cache_survives_key_replacement():
    # the native wrapper caches (array, data pointer); a *different* array
    # of the same size must not be scanned through the stale pointer
    rng = np.random.default_rng(13)
    k1 = rng.integers(0, 1000, size=200, dtype=np.int64)
    kernels.pivot_argmin_consume(k1, SENT, tier="native")
    k2 = rng.integers(0, 1000, size=200, dtype=np.int64)
    expect = int(np.argmin(k2))
    assert kernels.pivot_argmin_consume(k2, SENT, tier="native") == expect
    assert k2[expect] == SENT


# -- workspace ---------------------------------------------------------------

def test_grow_cap_geometric():
    grow = SpGEMMWorkspace._grow_cap
    assert grow(0, 1000) == 1024
    assert grow(1024, 1025) == 2048          # never an exact-fit realloc
    assert grow(1024, 10 ** 6) == 1 << 20
    cap = 0
    reallocs = 0
    for need in range(1, 5000, 7):           # rising watermark
        if need > cap:
            cap = grow(cap, need)
            reallocs += 1
    assert reallocs <= 4                     # O(log), not one per step


def test_matmat_buffers_reuse():
    ws = SpGEMMWorkspace()
    mark, sums, touched = ws.matmat_buffers(500)
    assert mark.size >= 500 and (mark == -1).all()
    assert sums.size == mark.size == touched.size
    grown = ws.grown
    again = ws.matmat_buffers(400)
    assert again[0] is mark and ws.grown == grown     # no regrow
    bigger = ws.matmat_buffers(5000)
    assert bigger[0].size >= 5000 and ws.grown == grown + 1


@needs_native
def test_native_spgemm_restores_mark_invariant():
    A, B = _pair(60, 40, seed=14)
    ws = SpGEMMWorkspace()
    kernels.spgemm_csr(A, B, tier="native", workspace=ws)
    assert (ws._mm_mark == -1).all()
    # a second call through the same workspace stays correct
    C = sp.csr_matrix(kernels.spgemm_csr(A, B, tier="native", workspace=ws))
    _assert_bitwise_csr(sp.csr_matrix(pure.spgemm_csr(A, B)), C)


@needs_native
def test_threadlocal_workspace_no_races():
    cases = []
    for seed in range(4):
        A, B = _pair(50, 35, seed=20 + seed)
        cases.append((A, B, sp.csr_matrix(pure.spgemm_csr(A, B))))
    failures = []

    def worker(idx):
        A, B, ref = cases[idx % len(cases)]
        for _ in range(25):
            C = sp.csr_matrix(kernels.spgemm_csr(A, B, tier="native"))
            if not (np.array_equal(C.indptr, ref.indptr)
                    and np.array_equal(C.indices, ref.indices)
                    and np.array_equal(C.data, ref.data)):
                failures.append(idx)
                return

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures


# -- conversion kernels ------------------------------------------------------

def _convert_cases():
    rng = np.random.default_rng(7)
    neg = sp.random(40, 60, density=0.15, random_state=rng, format="csr",
                    data_rvs=rng.standard_normal)
    neg.sum_duplicates()
    neg.sort_indices()
    neg.data[::3] = -0.0  # signed zeros must survive conversion bitwise
    return [
        sp.csr_matrix((10, 12)),                       # fully empty
        sp.random(1, 200, density=0.3, random_state=rng,
                  format="csr"),                       # single row
        sp.random(64, 64, density=0.05, random_state=rng,
                  format="csr"),                       # square
        neg,                                           # +-0.0 data
    ]


@needs_native
@pytest.mark.parametrize("case", range(4))
def test_csr_csc_convert_parity(case):
    A = _convert_cases()[case]
    _assert_bitwise_csc(A.tocsc(), kernels.csr_to_csc(A, tier="native"))
    Ac = A.tocsc()
    _assert_bitwise_csr(Ac.tocsr(), kernels.csc_to_csr(Ac, tier="native"))


@needs_native
def test_convert_parity_int64_indices():
    # scipy's matrix API downcasts the output index dtype to int32
    # whenever shape and nnz fit, even for int64-indexed input; the
    # native kernel must reproduce that
    rng = np.random.default_rng(11)
    A = sp.random(30, 50, density=0.2, random_state=rng, format="csr")
    A.sort_indices()
    A.indptr = A.indptr.astype(np.int64)
    A.indices = A.indices.astype(np.int64)
    got = kernels.csr_to_csc(A, tier="native")
    ref = A.tocsc()
    assert ref.indices.dtype == np.int32  # the downcast is real
    _assert_bitwise_csc(ref, got)


def _assert_bitwise_csc(C1, C2):
    assert isinstance(C2, sp.csc_matrix)
    assert C1.shape == C2.shape
    assert C1.indptr.dtype == C2.indptr.dtype
    assert C1.indices.dtype == C2.indices.dtype
    assert np.array_equal(C1.indptr, C2.indptr)
    assert np.array_equal(C1.indices, C2.indices)
    assert np.array_equal(C1.data.view(np.uint64), C2.data.view(np.uint64))


@needs_native
def test_convert_perf_counters():
    from repro import perf
    A, _ = _pair(40, 30, seed=3)
    perf.enable()
    try:
        kernels.csr_to_csc(A, tier="native")
        counters = perf.get_recorder().counters
        assert counters.get("kernel_tier.convert_calls", 0) >= 1
        assert counters.get("kernel_tier.convert_seconds", 0) > 0
        tiers.record_tier("native")
        assert counters.get("kernel_tier.threads") == float(
            kernels.kernel_threads())
    finally:
        perf.disable()


def test_kernel_threads_env(monkeypatch):
    monkeypatch.delenv(kernels.THREADS_ENV, raising=False)
    assert kernels.kernel_threads() == 1
    monkeypatch.setenv(kernels.THREADS_ENV, "4")
    assert kernels.kernel_threads() == 4
    monkeypatch.setenv(kernels.THREADS_ENV, "0")
    assert kernels.kernel_threads() == 1  # floor
    monkeypatch.setenv(kernels.THREADS_ENV, "lots")
    assert kernels.kernel_threads() == 1  # non-numeric reads as 1


# -- gram / fused Schur ------------------------------------------------------

@needs_native
@pytest.mark.parametrize("seed", range(3))
def test_gram_parity(seed):
    rng = np.random.default_rng(40 + seed)
    B1 = sp.random(120, 9, density=0.2, random_state=rng,
                   data_rvs=rng.standard_normal, format="csc")
    B2 = sp.random(120, 7, density=0.25, random_state=rng,
                   data_rvs=rng.standard_normal, format="csc")
    B1.sort_indices()
    B2.sort_indices()
    ref = kernels.gram_csc(B1, B2, tier="pure")
    got = kernels.gram_csc(B1, B2, tier="native")
    assert np.array_equal(ref.view(np.uint64), got.view(np.uint64))
    refs = kernels.gram_csc(B1, B1, tier="pure")
    gots = kernels.gram_csc(B1, B1, tier="native")
    assert np.array_equal(refs.view(np.uint64), gots.view(np.uint64))


@needs_native
def test_gram_symmetric_dense_panel_parity():
    # self-Gram takes the upper-triangle + mirror fast path; a density-1
    # panel additionally drives the contiguous full-workspace-row loop.
    # Both must reproduce the pure route bit for bit, signed zeros and all.
    rng = np.random.default_rng(44)
    for density in (0.6, 1.0):
        B = sp.random(90, 13, density=density, random_state=rng,
                      data_rvs=rng.standard_normal, format="csc")
        B.sort_indices()
        if B.nnz > 3:
            B.data[0] = 0.0
            B.data[1] = -0.0
        ref = kernels.gram_csc(B, B, tier="pure")
        got = kernels.gram_csc(B, B, tier="native")
        assert np.array_equal(ref.view(np.uint64), got.view(np.uint64))


# -- column gather -----------------------------------------------------------

@needs_native
@pytest.mark.parametrize("seed", range(3))
def test_gather_columns_parity(seed):
    rng = np.random.default_rng(70 + seed)
    A = sp.random(130, 40, density=0.15, random_state=rng,
                  data_rvs=rng.standard_normal, format="csc")
    A.sort_indices()
    for cols in (rng.permutation(40)[:11],        # scattered
                 np.array([5, 5, 0, 39]),          # duplicates
                 np.arange(40)[::-1],              # reversed
                 np.array([], dtype=np.intp)):     # empty
        ref = kernels.gather_columns(A, cols, tier="pure")
        got = kernels.gather_columns(A, cols, tier="native")
        scipy_ref = A[:, np.asarray(cols, dtype=np.intp)]
        assert got.shape == ref.shape == scipy_ref.shape
        assert got.indices.dtype == ref.indices.dtype
        assert got.indptr.dtype == ref.indptr.dtype
        assert np.array_equal(got.indptr, ref.indptr)
        assert np.array_equal(got.indices, ref.indices)
        assert np.array_equal(got.data.view(np.uint64),
                              ref.data.view(np.uint64))
        assert np.array_equal(got.toarray(), scipy_ref.toarray())


@needs_native
def test_gather_columns_int64_indices_downcast():
    # int64 input on a small matrix: both tiers emit the scipy dtype rule
    # (int32 index arrays whenever the row count fits)
    rng = np.random.default_rng(73)
    A = sp.random(60, 20, density=0.3, random_state=rng,
                  data_rvs=rng.standard_normal, format="csc")
    A.sort_indices()
    A.indices = A.indices.astype(np.int64)
    A.indptr = A.indptr.astype(np.int64)
    cols = rng.permutation(20)[:7]
    ref = kernels.gather_columns(A, cols, tier="pure")
    got = kernels.gather_columns(A, cols, tier="native")
    assert ref.indices.dtype == got.indices.dtype == np.int32
    assert np.array_equal(ref.indices, got.indices)
    assert np.array_equal(ref.data, got.data)


@needs_native
def test_extract_columns_routes_through_tier():
    # the non-contiguous path of extract_columns dispatches the registry;
    # both tiers must agree with each other and with fancy indexing
    from repro.sparse.ops import extract_columns
    rng = np.random.default_rng(74)
    A = sp.random(80, 30, density=0.2, random_state=rng,
                  data_rvs=rng.standard_normal, format="csc")
    A.sort_indices()
    cols = np.array([20, 3, 17, 3, 29])
    ref = extract_columns(A, cols, tier="pure")
    got = extract_columns(A, cols, tier="native")
    assert np.array_equal(ref.indptr, got.indptr)
    assert np.array_equal(ref.indices, got.indices)
    assert np.array_equal(ref.data.view(np.uint64),
                          got.data.view(np.uint64))
    assert np.array_equal(got.toarray(), A[:, cols].toarray())


@needs_native
@pytest.mark.parametrize("tol", [None, 0.0, 1e-2])
def test_schur_update_parity(tol):
    rng = np.random.default_rng(50)
    m, n, r = 50, 45, 6
    A22 = sp.random(m, n, density=0.12, random_state=rng,
                    data_rvs=rng.standard_normal, format="csr")
    F = sp.random(m, r, density=0.5, random_state=rng,
                  data_rvs=rng.standard_normal, format="csr")
    A12 = sp.random(r, n, density=0.5, random_state=rng,
                    data_rvs=rng.standard_normal, format="csr")
    for M in (A22, F, A12):
        M.sort_indices()
    ref = kernels.schur_update_csc(A22, F, A12, tol=tol, tier="pure")
    got = kernels.schur_update_csc(A22, F, A12, tol=tol, tier="native")
    _assert_bitwise_csc(ref, got)


@needs_native
def test_schur_update_exact_cancellation():
    # plant entries of A22 equal to product entries so the difference
    # cancels to exact zero — scipy's binop drops them, so must the kernel
    rng = np.random.default_rng(51)
    F, A12 = _pair(40, 12, seed=51, pow2=True)
    from repro.sparse.ops import csr_matmul_nosym
    C = csr_matmul_nosym(F, A12)
    A22 = C.copy()
    ref = kernels.schur_update_csc(A22, F, A12, tol=0.0, tier="pure")
    got = kernels.schur_update_csc(A22, F, A12, tol=0.0, tier="native")
    assert got.nnz == 0
    _assert_bitwise_csc(ref, got)


# -- OpenMP parallel SpGEMM --------------------------------------------------

@needs_native
@pytest.mark.parametrize("threads", ["1", "2", "8"])
def test_spgemm_thread_count_independence(threads, monkeypatch):
    monkeypatch.setenv(kernels.THREADS_ENV, threads)
    A, B = _pair(90, 70, seed=60)
    ref = sp.csr_matrix(pure.spgemm_csr(A, B))
    got = sp.csr_matrix(kernels.spgemm_csr(A, B, tier="native"))
    _assert_bitwise_csr(ref, got)


@needs_native
def test_parallel_spgemm_no_races(monkeypatch):
    # 8 Python threads each running the OpenMP SpGEMM at 8 kernel threads
    # through thread-local workspaces, mirroring the serial race test
    monkeypatch.setenv(kernels.THREADS_ENV, "8")
    cases = []
    for seed in range(4):
        A, B = _pair(50, 35, seed=70 + seed)
        cases.append((A, B, sp.csr_matrix(pure.spgemm_csr(A, B))))
    failures = []

    def worker(idx):
        A, B, ref = cases[idx % len(cases)]
        for _ in range(25):
            C = sp.csr_matrix(kernels.spgemm_csr(A, B, tier="native"))
            if not (np.array_equal(C.indptr, ref.indptr)
                    and np.array_equal(C.indices, ref.indices)
                    and np.array_equal(C.data, ref.data)):
                failures.append(idx)
                return

    workers = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    assert not failures


@needs_native
def test_parallel_spgemm_restores_mark_invariant(monkeypatch):
    monkeypatch.setenv(kernels.THREADS_ENV, "4")
    A, B = _pair(60, 40, seed=15)
    ws = SpGEMMWorkspace()
    kernels.spgemm_csr(A, B, tier="native", workspace=ws)
    assert (ws._mm_mark == -1).all()


@needs_native
def test_e2e_parity_across_thread_counts(monkeypatch):
    A = _m2_analogue(150)
    results = []
    for threads in ("1", "2"):
        monkeypatch.setenv(kernels.THREADS_ENV, threads)
        results.append(LU_CRTP(k=8, tol=1e-6, max_rank=32,
                               kernel_tier="native",
                               raise_on_failure=False).solve(A))
    _assert_same_lu(results[0], results[1])


# -- factor-conversion caching (repro.core.apply) ----------------------------

def test_apply_factor_conversion_cached():
    from repro.core.apply import _factor_csc, pseudo_solve
    A = _m2_analogue(80)
    r = LU_CRTP(k=8, tol=1e-6, max_rank=24, raise_on_failure=False).solve(A)
    L1 = _factor_csc(r, "L")
    assert _factor_csc(r, "L") is L1  # second lookup hits the cache
    b = np.ones(A.shape[0])
    x1 = pseudo_solve(r, b)
    x2 = pseudo_solve(r, b)  # cached factors: same object, same answer
    assert np.array_equal(x1, x2)


# -- end-to-end parity -------------------------------------------------------

def _assert_same_lu(r1, r2):
    assert np.array_equal(r1.row_perm, r2.row_perm)
    assert np.array_equal(r1.col_perm, r2.col_perm)
    assert r1.rank == r2.rank and r1.iterations == r2.iterations
    assert abs(r1.L - r2.L).max() == 0.0
    assert abs(r1.U - r2.U).max() == 0.0
    assert all(a.indicator == b.indicator
               for a, b in zip(r1.history, r2.history))


@needs_native
@pytest.mark.parametrize("cls,extra", [
    (LU_CRTP, {}),
    (ILUT_CRTP, {"estimated_iterations": 6}),
])
def test_e2e_solver_tier_parity(cls, extra):
    A = _m2_analogue(200)
    common = dict(k=16, tol=1e-6, max_rank=64, raise_on_failure=False,
                  **extra)
    r_pure = cls(kernel_tier="pure", **common).solve(A)
    r_nat = cls(kernel_tier="native", **common).solve(A)
    assert r_pure.kernel_tier == "pure" and r_nat.kernel_tier == "native"
    _assert_same_lu(r_pure, r_nat)


@needs_native
def test_e2e_randqb_tier_parity():
    A = _m2_analogue(150)
    common = dict(k=8, tol=1e-2, max_rank=48, seed=0,
                  raise_on_failure=False)
    r_pure = RandQB_EI(kernel_tier="pure", **common).solve(A)
    r_nat = RandQB_EI(kernel_tier="native", **common).solve(A)
    assert r_pure.rank == r_nat.rank
    assert np.array_equal(r_pure.Q, r_nat.Q)
    assert np.array_equal(r_pure.B, r_nat.B)
    assert all(a.indicator == b.indicator
               for a, b in zip(r_pure.history, r_nat.history))


@needs_native
@pytest.mark.parametrize("method,kw", [
    ("lu", {}),
    ("ilut", {"threshold": 1e-3}),
])
def test_spmd_tier_parity(method, kw):
    A = _m2_analogue(150)
    r_pure = run_spmd_solver(method, A, 2, k=8, tol=1e-2, max_rank=48,
                             kernel_tier="pure", **kw)
    r_nat = run_spmd_solver(method, A, 2, k=8, tol=1e-2, max_rank=48,
                            kernel_tier="native", **kw)
    assert r_nat.kernel_tier == "native"
    assert len(r_pure.history) == len(r_nat.history)
    assert all(a.indicator == b.indicator
               for a, b in zip(r_pure.history, r_nat.history))


@needs_native
def test_spmd_tier_parity_under_sanitizers(monkeypatch):
    from repro.parallel import sanitize
    monkeypatch.setenv(sanitize.ENV_VAR, "1")
    A = _m2_analogue(120)
    r_pure = run_spmd_solver("lu", A, 2, k=8, tol=1e-2, max_rank=32,
                             kernel_tier="pure")
    r_nat = run_spmd_solver("lu", A, 2, k=8, tol=1e-2, max_rank=32,
                            kernel_tier="native")
    assert all(a.indicator == b.indicator
               for a, b in zip(r_pure.history, r_nat.history))


# -- CLI ---------------------------------------------------------------------

def test_cli_kernel_tier_flag(capsys):
    from repro.cli import main
    code = main(["solve", "M4", "--scale", "0.25", "--method", "lu",
                 "-k", "8", "--tol", "1e-1", "--kernel-tier", "pure"])
    assert code == 0
    assert "kernel tier" in capsys.readouterr().out.lower()


@needs_native
def test_cli_kernel_tier_native(capsys):
    from repro.cli import main
    code = main(["solve", "M4", "--scale", "0.25", "--method", "lu",
                 "-k", "8", "--tol", "1e-1", "--kernel-tier", "native"])
    assert code == 0
    assert "native" in capsys.readouterr().out.lower()
