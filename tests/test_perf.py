"""Tests for repro.perf (kernel instrumentation layer)."""

import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro import perf
from repro.perf import KernelStat, PerfRecorder


@pytest.fixture(autouse=True)
def _clean_global_recorder():
    perf.disable()
    perf.reset()
    yield
    perf.disable()
    perf.reset()


def test_disabled_by_default_noop():
    assert not perf.is_enabled()
    with perf.timer("x"):
        pass
    perf.incr("c")
    perf.add_flops("x", 100.0)
    perf.add_bytes("x", 8.0)
    rep = perf.report()
    assert rep["timers"] == {} and rep["counters"] == {}


def test_timer_records_calls_and_seconds():
    perf.enable()
    for _ in range(3):
        with perf.timer("k"):
            time.sleep(0.001)
    rep = perf.report()
    t = rep["timers"]["k"]
    assert t["calls"] == 3
    assert t["seconds"] >= 0.003
    assert t["min_ms"] <= t["mean_ms"] <= t["max_ms"]


def test_counters_and_derived_rates():
    perf.enable()
    with perf.timer("gemm"):
        time.sleep(0.001)
    perf.add_flops("gemm", 2e6)
    perf.add_bytes("gemm", 1e6)
    perf.incr("iterations")
    perf.incr("iterations", 4)
    rep = perf.report()
    g = rep["timers"]["gemm"]
    assert g["flops"] == 2e6 and g["bytes"] == 1e6
    assert g["gflops_per_s"] > 0 and g["gbytes_per_s"] > 0
    assert rep["counters"]["iterations"] == 5


def test_reset_clears_everything():
    perf.enable()
    with perf.timer("a"):
        pass
    perf.incr("b")
    perf.reset()
    rep = perf.report()
    assert rep["timers"] == {} and rep["counters"] == {}


def test_caller_owned_recorder():
    mine = PerfRecorder()
    perf.enable(mine)
    with perf.timer("k"):
        pass
    assert perf.get_recorder() is mine
    assert mine.timers["k"].calls == 1


def test_kernel_stat_min_max():
    st = KernelStat()
    st.add(0.5)
    st.add(0.1)
    st.add(0.9)
    assert st.calls == 3
    assert st.min_seconds == 0.1 and st.max_seconds == 0.9
    assert st.seconds == pytest.approx(1.5)


def test_solver_populates_timers():
    from repro.core.lu_crtp import LU_CRTP
    rng = np.random.default_rng(0)
    A = sp.random(80, 80, density=0.1, random_state=rng, format="csc") \
        + sp.diags(np.linspace(1, 0.1, 80), format="csc")
    perf.enable()
    LU_CRTP(k=8, tol=1e-2, raise_on_failure=False).solve(A.tocsc())
    rep = perf.report()
    assert rep["timers"], "instrumented solver recorded no timers"
    for entry in rep["timers"].values():
        assert entry["calls"] >= 1 and entry["seconds"] >= 0.0


def test_disabled_overhead_under_5_percent():
    """A disabled call site must stay within the 5% overhead budget.

    Comparing two full solves is too noisy to pin 5%, so the bound is
    computed directly: (number of instrumented events one solve fires)
    x (measured cost of one disabled event) must be under 5% of the
    solve's wall-clock time.
    """
    from repro.core.lu_crtp import LU_CRTP
    rng = np.random.default_rng(3)
    A = (sp.random(300, 300, density=0.02, random_state=rng, format="csc")
         + sp.diags(np.linspace(1, 0.01, 300), format="csc")).tocsc()
    solver = LU_CRTP(k=16, tol=1e-4, max_rank=96, raise_on_failure=False)
    solver.solve(A)  # warm caches

    # count instrumented events (timer scopes + counter bumps) per solve
    rec = PerfRecorder()
    perf.enable(rec)
    solver.solve(A)
    perf.disable()
    events = sum(s.calls for s in rec.timers.values()) + len(rec.counters)
    assert events > 0

    t0 = time.perf_counter()
    solver.solve(A)
    solve_s = time.perf_counter() - t0

    reps = 200_000
    t0 = time.perf_counter()
    for _ in range(reps):
        with perf.timer("x"):
            pass
        perf.add_flops("x", 1.0)
    per_event = (time.perf_counter() - t0) / (2 * reps)

    assert events * per_event < 0.05 * solve_s, (
        f"{events} disabled events x {per_event * 1e9:.0f}ns "
        f"vs {solve_s * 1e3:.1f}ms solve")
