"""Sanitizer build profiles for the native kernel tier.

Covers the ``$REPRO_KERNEL_SANITIZE`` surface end to end: profile
parsing, flag/cache-key folding, loader environment synthesis, the
tsan/asan load refusals, the typed :class:`KernelBuildError` on an
explicit-native broken build, and — where the toolchain allows — real
instrumented runs: a kernel call through an ASan+UBSan build in a
subprocess, the TSan race driver at 2 threads, and the acceptance check
that an injected out-of-bounds write in a scratch copy of the C sources
is caught by ASan.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest
import scipy.sparse as sp

from repro import kernels
from repro.exceptions import KernelBuildError
from repro.kernels import native
from repro.kernels.native import build

REPO = Path(__file__).resolve().parents[1]
HAS_COMPILER = build.find_compiler() is not None
HAS_NATIVE = kernels.native_available()
HAS_ASAN_RT = HAS_COMPILER and build.sanitizer_runtime("asan") is not None
HAS_TSAN_RT = HAS_COMPILER and build.sanitizer_runtime("tsan") is not None

needs_compiler = pytest.mark.skipif(
    not HAS_COMPILER, reason="no C compiler on PATH")
needs_asan = pytest.mark.skipif(
    not HAS_ASAN_RT, reason="no shared ASan runtime in the toolchain")
needs_tsan = pytest.mark.skipif(
    not HAS_TSAN_RT, reason="no shared TSan runtime in the toolchain")


@pytest.fixture(autouse=True)
def tier_state():
    yield
    kernels.reset()


# ---------------------------------------------------------------------------
# profile parsing + flag folding (host-independent)
# ---------------------------------------------------------------------------

def test_sanitize_profiles_parsing():
    assert build.sanitize_profiles("") == ()
    assert build.sanitize_profiles("asan") == ("asan",)
    assert build.sanitize_profiles("ubsan,asan") == ("asan", "ubsan")
    assert build.sanitize_profiles("  ASAN  UBSAN ") == ("asan", "ubsan")
    assert build.sanitize_profiles("tsan") == ("tsan",)


def test_sanitize_profiles_rejects_unknown_and_tsan_combos():
    with pytest.raises(ValueError, match="msan"):
        build.sanitize_profiles("msan")
    with pytest.raises(ValueError, match="tsan"):
        build.sanitize_profiles("tsan,asan")


def test_sanitize_profiles_reads_the_environment(monkeypatch):
    monkeypatch.setenv(build.SANITIZE_ENV, "ubsan")
    assert build.sanitize_profiles() == ("ubsan",)
    monkeypatch.delenv(build.SANITIZE_ENV)
    assert build.sanitize_profiles() == ()


def test_sanitize_cflags_per_profile():
    assert build.sanitize_cflags(()) == ()
    asan = build.sanitize_cflags(("asan",), compiler="/usr/bin/gcc")
    assert "-fsanitize=address" in asan
    assert "-fno-omit-frame-pointer" in asan and "-g" in asan
    assert "-shared-libasan" not in asan  # gcc links the shared rt itself
    clang = build.sanitize_cflags(("asan",), compiler="/usr/bin/clang")
    assert "-shared-libasan" in clang
    ubsan = build.sanitize_cflags(("ubsan",))
    assert "-fsanitize=undefined" in ubsan
    assert "-fno-sanitize-recover=undefined" in ubsan


def test_flag_sets_fold_the_active_profile(monkeypatch):
    monkeypatch.delenv(build.SANITIZE_ENV, raising=False)
    plain = build.flag_sets()
    assert plain == build.FLAG_SETS
    monkeypatch.setenv(build.SANITIZE_ENV, "asan,ubsan")
    instrumented = build.flag_sets()
    assert len(instrumented) == len(plain)
    for fs in instrumented:
        assert "-fsanitize=address" in fs and "-fsanitize=undefined" in fs


def test_sanitizer_flags_change_the_cache_key(monkeypatch):
    """The acceptance pin: an instrumented build can never be served from
    (or poison) the plain build cache."""
    monkeypatch.delenv(build.SANITIZE_ENV, raising=False)
    plain = build.source_hash(cflags=build.flag_sets()[0])
    keys = {plain}
    for profile in ("asan", "ubsan", "asan,ubsan", "tsan"):
        monkeypatch.setenv(build.SANITIZE_ENV, profile)
        keys.add(build.source_hash(cflags=build.flag_sets()[0]))
    assert len(keys) == 5  # every profile landed in its own cache dir


def test_cached_library_paths_move_with_the_profile(monkeypatch, tmp_path):
    monkeypatch.delenv(build.SANITIZE_ENV, raising=False)
    plain = build.cached_library_paths(cache_dir=tmp_path)
    monkeypatch.setenv(build.SANITIZE_ENV, "asan")
    asan = build.cached_library_paths(cache_dir=tmp_path)
    assert set(plain).isdisjoint(asan)


# ---------------------------------------------------------------------------
# loader environment + refusals
# ---------------------------------------------------------------------------

def test_sanitizer_env_shapes():
    assert build.sanitizer_env(()) == {}
    ubsan = build.sanitizer_env(("ubsan",))
    assert ubsan == {"UBSAN_OPTIONS": "print_stacktrace=1"}
    assert build.sanitizer_env(("tsan",)) == {}  # nothing makes tsan safe


@needs_asan
def test_sanitizer_env_preloads_the_asan_runtime():
    env = build.sanitizer_env(("asan",))
    assert "detect_leaks=0" in env["ASAN_OPTIONS"]
    assert "asan" in env["LD_PRELOAD"]
    assert Path(env["LD_PRELOAD"].split(":")[0]).exists()


def test_tsan_load_is_refused():
    msg = native._sanitize_load_error("lib.so", ("tsan",))
    assert msg is not None and "native driver" in msg


def test_asan_load_refused_without_preload(monkeypatch):
    monkeypatch.delenv("LD_PRELOAD", raising=False)
    msg = native._sanitize_load_error("lib.so", ("asan",))
    assert msg is not None and "sanitize-env" in msg
    monkeypatch.setenv("LD_PRELOAD", "/usr/lib/libasan.so.8")
    assert native._sanitize_load_error("lib.so", ("asan",)) is None


# ---------------------------------------------------------------------------
# explicit-native build failures raise (satellite bugfix)
# ---------------------------------------------------------------------------

@needs_compiler
def test_explicit_native_broken_build_raises_kernelbuilderror(
        tmp_path, monkeypatch):
    bad = tmp_path / "src"
    bad.mkdir()
    (bad / "broken.c").write_text("this is not C\n")
    monkeypatch.setattr(build, "_SRC_DIR", bad)
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path / "cache"))
    kernels.reset()
    with pytest.raises(KernelBuildError) as exc_info:
        kernels.resolve_tier("native")
    err = exc_info.value
    assert err.compiler and Path(err.compiler).name
    assert err.stderr  # the compiler's own diagnostics ride along
    # auto must keep degrading silently: same broken sources, no raise
    assert kernels.resolve_tier("auto") == "pure"


@needs_compiler
def test_failed_compile_leaves_no_cache_litter(tmp_path, monkeypatch):
    bad = tmp_path / "src"
    bad.mkdir()
    (bad / "broken.c").write_text("#error no\n")
    monkeypatch.setattr(build, "_SRC_DIR", bad)
    cache = tmp_path / "cache"
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(cache))
    kernels.reset()
    assert build.build_library() is None
    assert build.last_failure is not None
    leftovers = list(cache.rglob("*")) if cache.exists() else []
    assert not any(p.is_file() for p in leftovers)


def test_no_compiler_keeps_the_warned_fallback(monkeypatch):
    monkeypatch.setattr(build, "find_compiler", lambda: None)
    monkeypatch.setattr(build, "last_failure", None)
    kernels.reset()
    with pytest.warns(RuntimeWarning, match="falling back"):
        assert kernels.resolve_tier("native") == "pure"


# ---------------------------------------------------------------------------
# instrumented runs
# ---------------------------------------------------------------------------

def _run_py(script: str, env: dict, timeout: int = 240):
    full = dict(os.environ)
    full.update(env)
    full["PYTHONPATH"] = str(REPO / "src") + os.pathsep + full.get(
        "PYTHONPATH", "")
    return subprocess.run([sys.executable, "-c", textwrap.dedent(script)],
                          capture_output=True, text=True, env=full,
                          timeout=timeout)


_SMOKE = """
    import numpy as np, scipy.sparse as sp
    from repro import kernels
    assert kernels.resolve_tier("native") == "native"
    rng = np.random.default_rng(0)
    A = sp.random(60, 40, density=0.3, random_state=rng, format="csr")
    B = sp.random(40, 50, density=0.3, random_state=rng, format="csr")
    C_pure = kernels.spgemm_csr(A, B, tier="pure")
    C_nat = kernels.spgemm_csr(A, B, tier="native")
    assert np.array_equal(C_pure.indptr, C_nat.indptr)
    assert np.array_equal(C_pure.indices, C_nat.indices)
    assert C_pure.data.tobytes() == C_nat.data.tobytes()
    print("SANITIZED-PARITY-OK")
"""


@needs_asan
def test_asan_ubsan_build_loads_and_matches_pure(tmp_path):
    """End to end through the documented recipe: instrumented build in a
    fresh cache, loader env from sanitizer_env(), bitwise parity held."""
    env = build.sanitizer_env(("asan", "ubsan"))
    assert "LD_PRELOAD" in env
    env[build.SANITIZE_ENV] = "asan,ubsan"
    env["REPRO_KERNEL_CACHE"] = str(tmp_path / "cache")
    proc = _run_py(_SMOKE, env)
    assert proc.returncode == 0, proc.stderr
    assert "SANITIZED-PARITY-OK" in proc.stdout


@needs_asan
def test_injected_oob_write_is_caught_by_asan(tmp_path):
    """Acceptance: an off-by-one loop bound in a scratch copy of
    threshold.c (writes mask[nnz]) must crash with an AddressSanitizer
    report instead of silently corrupting the heap."""
    drift = tmp_path / "src"
    shutil.copytree(build._SRC_DIR, drift)
    c = drift / "threshold.c"
    text = c.read_text()
    assert "i < nnz; i++" in text
    c.write_text(text.replace("i < nnz; i++", "i <= nnz; i++", 1))

    env = build.sanitizer_env(("asan",))
    env[build.SANITIZE_ENV] = "asan"
    env["REPRO_KERNEL_CACHE"] = str(tmp_path / "cache")
    script = f"""
    from pathlib import Path
    from repro.kernels.native import build  # test harness: repoint sources
    build._SRC_DIR = Path({str(drift)!r})
    import numpy as np, scipy.sparse as sp
    from repro import kernels
    rng = np.random.default_rng(0)
    A = sp.random(40, 40, density=0.3, random_state=rng, format="csr")
    kernels.threshold_mask(A, 0.5, tier="native")
    print("SURVIVED")
    """
    proc = _run_py(script, env)
    assert proc.returncode != 0, proc.stdout + proc.stderr
    assert "AddressSanitizer" in proc.stderr
    assert "SURVIVED" not in proc.stdout


@needs_tsan
def test_race_driver_is_clean_and_bitwise(tmp_path, monkeypatch):
    """The OpenMP SpGEMM race check: tsan-profile kernel build + the
    instrumented native driver, 2 threads (CI's core budget).  A clean
    exit certifies no data race was flagged *and* the parallel result
    stayed bitwise identical to the serial kernel's."""
    monkeypatch.setenv(build.SANITIZE_ENV, "tsan")
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path / "cache"))
    lib = build.build_library()
    assert lib is not None, build.last_error
    driver = build.build_race_driver(lib)
    assert driver is not None, build.last_error
    env = dict(os.environ)
    env["TSAN_OPTIONS"] = "halt_on_error=1 exitcode=66"
    proc = subprocess.run([str(driver), "2", "2"], capture_output=True,
                          text=True, env=env, timeout=240)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK" in proc.stdout
