"""Tests for repro.linalg.triangular."""

import numpy as np
import pytest

from repro.linalg.triangular import solve_lower, solve_unit_lower, solve_upper


@pytest.fixture
def upper(rng):
    R = np.triu(rng.standard_normal((8, 8))) + 4 * np.eye(8)
    return R


def test_solve_upper_matrix(rng, upper):
    B = rng.standard_normal((8, 3))
    X = solve_upper(upper, B)
    np.testing.assert_allclose(upper @ X, B, atol=1e-10)


def test_solve_upper_vector(rng, upper):
    b = rng.standard_normal(8)
    x = solve_upper(upper, b)
    assert x.shape == (8,)
    np.testing.assert_allclose(upper @ x, b, atol=1e-10)


def test_solve_lower(rng):
    L = np.tril(rng.standard_normal((6, 6))) + 3 * np.eye(6)
    B = rng.standard_normal((6, 2))
    X = solve_lower(L, B)
    np.testing.assert_allclose(L @ X, B, atol=1e-10)


def test_solve_unit_lower(rng):
    L = np.tril(rng.standard_normal((7, 7)), k=-1) + np.eye(7)
    b = rng.standard_normal(7)
    x = solve_unit_lower(L, b)
    np.testing.assert_allclose(L @ x, b, atol=1e-10)


def test_solve_unit_lower_ignores_diagonal(rng):
    L = np.tril(rng.standard_normal((5, 5)), k=-1) + np.eye(5)
    L_bad_diag = L + np.diag(rng.standard_normal(5))  # garbage diagonal
    b = rng.standard_normal(5)
    np.testing.assert_allclose(solve_unit_lower(L_bad_diag, b),
                               solve_unit_lower(L, b), atol=1e-12)


def test_inputs_not_mutated(rng, upper):
    B = rng.standard_normal((8, 2))
    B0 = B.copy()
    solve_upper(upper, B)
    np.testing.assert_array_equal(B, B0)
