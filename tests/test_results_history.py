"""Tests for repro.results and repro.history containers."""

import numpy as np
import pytest

from repro.history import ConvergenceHistory, IterationRecord
from repro.results import QBApproximation


def test_iteration_record_density():
    r = IterationRecord(iteration=1, rank=8, indicator=0.5,
                        schur_nnz=50, schur_shape=(10, 10))
    assert r.schur_density == pytest.approx(0.5)
    r0 = IterationRecord(iteration=1, rank=8, indicator=0.5)
    assert r0.schur_density == 0.0


def test_history_accessors():
    h = ConvergenceHistory()
    for i in range(3):
        h.append(IterationRecord(iteration=i + 1, rank=(i + 1) * 4,
                                 indicator=1.0 / (i + 1),
                                 schur_nnz=10 * (i + 1),
                                 schur_shape=(10, 10),
                                 dropped_nnz=i))
    assert len(h) == 3
    assert h.iterations == 3
    assert h.final_rank == 12
    assert h.indicators == [1.0, 0.5, pytest.approx(1 / 3)]
    assert h.max_schur_density == pytest.approx(0.3)
    assert h.total_dropped_nnz == 3
    assert h[1].rank == 8
    assert [r.iteration for r in h] == [1, 2, 3]


def test_qb_result_interface(rng):
    Q, _ = np.linalg.qr(rng.standard_normal((20, 5)))
    A = rng.standard_normal((20, 15))
    B = Q.T @ A
    res = QBApproximation(rank=5, tolerance=1e-2, indicator=1.0,
                          a_fro=np.linalg.norm(A), converged=True, Q=Q, B=B)
    assert res.left is Q
    assert res.right is B
    assert res.factor_nnz() == Q.size + B.size
    np.testing.assert_allclose(res.reconstruct(), Q @ B)
    x = rng.standard_normal(15)
    np.testing.assert_allclose(res.apply(x), Q @ (B @ x))


def test_relative_indicator_zero_norm():
    res = QBApproximation(rank=0, tolerance=1e-2, indicator=0.0, a_fro=0.0,
                          converged=True, Q=np.zeros((3, 0)),
                          B=np.zeros((0, 3)))
    assert res.relative_indicator() == 0.0


def test_lu_result_error_uses_permutations(small_sparse):
    from repro import lu_crtp
    res = lu_crtp(small_sparse, k=8, tol=1e-2)
    # error() permutes A before comparing; an unpermuted comparison would be
    # wildly larger
    Ad = small_sparse.toarray()
    raw = np.linalg.norm(Ad - res.reconstruct()) / np.linalg.norm(Ad)
    assert res.error(small_sparse) < raw or np.allclose(
        res.row_perm, np.arange(60))


def test_lu_permutation_matrices_orthogonal(small_sparse):
    from repro import lu_crtp
    res = lu_crtp(small_sparse, k=8, tol=1e-2)
    Pr, Pc = res.permutation_matrices()
    I1 = (Pr @ Pr.T).toarray()
    I2 = (Pc @ Pc.T).toarray()
    np.testing.assert_allclose(I1, np.eye(60))
    np.testing.assert_allclose(I2, np.eye(60))


def test_solver_callbacks_fire_once_per_iteration(small_sparse):
    """The per-iteration callback hook receives every history record, in
    order, for all four solvers."""
    from repro import ILUT_CRTP, LU_CRTP, RandQB_EI, RandUBV
    for solver_cls, kwargs in (
            (RandQB_EI, {}), (RandUBV, {}), (LU_CRTP, {}),
            (ILUT_CRTP, {"estimated_iterations": 3})):
        seen = []
        res = solver_cls(k=8, tol=1e-1, callback=seen.append,
                         **kwargs).solve(small_sparse)
        assert len(seen) == res.iterations, solver_cls.__name__
        assert [r.rank for r in seen] == [r.rank for r in res.history]
