"""Chaos tests: fault injection, timeout/retry, checkpoint-resume, recovery.

The fault model (docs/robustness.md) promises two behaviors:

- **masked** faults (clock-skew stalls, corrupted tournament candidates)
  leave the factorization correct — ``||A - HW||_F < tau ||A||_F`` holds;
- **unmasked** faults (rank crash, dropped message) surface as *typed*
  exceptions naming the failing rank / route / superstep instead of
  deadlocking, and a crashed run resumed from its last checkpoint reaches
  the same rank and tolerance as an uninterrupted one.
"""

import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import ILUT_CRTP, LU_CRTP, RandQB_EI
from repro.core.recovery import RecoveryLog, RecoveryPolicy
from repro.exceptions import (
    CheckpointError,
    CommTimeoutError,
    RankDeficiencyBreakdown,
    RankFailure,
)
from repro.linalg.cholqr import cholqr2
from repro.matrices.generators import random_graded
from repro.parallel.comm import run_spmd
from repro.parallel.faults import (
    DROP,
    ClockSkewStall,
    FaultPlan,
    MessageDrop,
    PayloadCorruption,
    RankCrash,
)
from repro.parallel.spmd import spmd_lu_crtp, spmd_randqb_ei


@pytest.fixture(scope="module")
def A100():
    return random_graded(100, 100, nnz_per_row=6, decay_rate=5.0, seed=3)


# ---------------------------------------------------------------------------
# Fault primitives
# ---------------------------------------------------------------------------

def test_fault_plan_reusable_and_deterministic():
    plan = FaultPlan([PayloadCorruption(src=0, dst=1, scale=1e-2)], seed=7)
    payload = np.linspace(0.0, 1.0, 32)
    out1 = plan.build().filter_send(0, 1, 0, payload.copy())
    out2 = plan.build().filter_send(0, 1, 0, payload.copy())
    np.testing.assert_array_equal(out1, out2)
    assert not np.array_equal(out1, payload)


def test_corruption_spares_integer_arrays():
    plan = FaultPlan([PayloadCorruption(src=0, dst=1)], seed=0)
    ids = np.arange(5)
    vals = np.ones(5)
    M = sp.random(6, 6, density=0.5, format="csc", random_state=1)
    out = plan.build().filter_send(0, 1, 0, (ids, vals, M))
    out_ids, out_vals, out_M = out
    np.testing.assert_array_equal(out_ids, ids)  # addressing untouched
    assert not np.array_equal(out_vals, vals)    # values perturbed
    assert out_M.nnz == M.nnz
    assert not np.array_equal(out_M.data, M.data)
    np.testing.assert_array_equal(M.data, sp.random(
        6, 6, density=0.5, format="csc", random_state=1).data)  # no aliasing


def test_message_drop_count_bounds():
    inj = FaultPlan([MessageDrop(src=0, dst=1, count=2)]).build()
    assert inj.filter_send(0, 1, 0, 1.0) is DROP
    assert inj.filter_send(0, 1, 0, 1.0) is DROP
    assert inj.filter_send(0, 1, 0, 1.0) == 1.0  # budget exhausted
    assert inj.filter_send(1, 0, 0, 1.0) == 1.0  # other routes untouched
    assert len(inj.injected) == 2


def test_unknown_fault_spec_rejected():
    with pytest.raises(TypeError):
        FaultPlan(["nonsense"]).build()


# ---------------------------------------------------------------------------
# Unmasked faults surface as typed errors, not deadlocks
# ---------------------------------------------------------------------------

def test_rank_crash_surfaces_typed_failure():
    def prog(comm):
        for _ in range(5):
            comm.allgather(comm.rank)

    plan = FaultPlan([RankCrash(rank=1, superstep=3)])
    with pytest.raises(RankFailure) as ei:
        run_spmd(4, prog, fault_plan=plan, collective_timeout=10.0)
    assert ei.value.rank == 1
    assert ei.value.superstep == 3
    assert ei.value.injected


def test_message_drop_raises_timeout_naming_route():
    def prog(comm):
        if comm.rank == 0:
            comm.send(np.ones(3), 1, tag=5)
        elif comm.rank == 1:
            return comm.recv(0, tag=5)
        return None

    plan = FaultPlan([MessageDrop(src=0, dst=1, tag=5)])
    start = time.perf_counter()
    with pytest.raises(CommTimeoutError) as ei:
        run_spmd(2, prog, fault_plan=plan, recv_timeout=0.3)
    assert time.perf_counter() - start < 30.0
    assert (ei.value.src, ei.value.dst, ei.value.tag) == (0, 1, 5)


def test_recv_fails_fast_on_dead_sender():
    def prog(comm):
        if comm.rank == 0:
            return comm.recv(1, timeout=30.0)
        comm.send(1.0, 0)  # never happens: rank 1 dies on its first op
        return None

    plan = FaultPlan([RankCrash(rank=1, superstep=1)])
    start = time.perf_counter()
    with pytest.raises(RankFailure):
        run_spmd(2, prog, fault_plan=plan)
    # the 30 s timeout is *not* awaited: the dead sender is detected early
    assert time.perf_counter() - start < 10.0


# ---------------------------------------------------------------------------
# Masked faults: the factorization stays within tolerance
# ---------------------------------------------------------------------------

def test_clock_skew_is_masked_but_costs_time(A100):
    base = run_spmd(4, spmd_randqb_ei, A100, k=8, tol=1e-2, seed=0)
    plan = FaultPlan([ClockSkewStall(rank=2, superstep=5, seconds=3.0)])
    out = run_spmd(4, spmd_randqb_ei, A100, k=8, tol=1e-2, seed=0,
                   fault_plan=plan)
    Q = np.vstack([r[0] for r in out["results"]])
    B = out["results"][0][1]
    err = np.linalg.norm(A100.toarray() - Q @ B)
    assert err < 1e-2 * np.linalg.norm(A100.toarray())
    assert out["results"][0][2] == base["results"][0][2]  # same rank
    # the straggler's stall shows up in the modeled wall-clock
    assert out["elapsed"] >= base["elapsed"] + 3.0


def test_corrupted_tournament_candidates_are_masked(A100):
    # perturb the p2p candidate exchanges of the column tournament: pivot
    # *selection* may degrade, but convergence is declared on the exact
    # Schur-complement norm, so the answer still meets the tolerance
    plan = FaultPlan(
        [PayloadCorruption(src=1, dst=0, scale=1e-2, count=3)], seed=5)
    out = run_spmd(4, spmd_lu_crtp, A100, k=8, tol=1e-2, fault_plan=plan)
    K, conv, rel = out["results"][0]
    assert conv
    assert rel < 1e-2


# ---------------------------------------------------------------------------
# Checkpoint -> crash -> resume (the acceptance scenario)
# ---------------------------------------------------------------------------

def test_spmd_lu_crash_checkpoint_resume(A100, tmp_path):
    base = run_spmd(4, spmd_lu_crtp, A100, k=8, tol=1e-2)
    K0, conv0, rel0 = base["results"][0]
    assert conv0

    ckpt = tmp_path / "lu.ckpt.npz"
    plan = FaultPlan([RankCrash(rank=1, superstep=60)])
    with pytest.raises(RankFailure) as ei:
        run_spmd(4, spmd_lu_crtp, A100, k=8, tol=1e-2,
                 checkpoint_path=ckpt, fault_plan=plan,
                 recv_timeout=2.0, collective_timeout=10.0)
    assert ei.value.rank == 1
    assert ckpt.exists()  # at least one completed iteration was persisted

    out = run_spmd(4, spmd_lu_crtp, A100, k=8, tol=1e-2,
                   resume_from=str(ckpt))
    K, conv, rel = out["results"][0]
    assert (K, conv) == (K0, conv0)
    assert rel == pytest.approx(rel0, rel=1e-12)
    assert rel < 1e-2


def test_spmd_randqb_crash_checkpoint_resume(A100):
    base = run_spmd(4, spmd_randqb_ei, A100, k=8, tol=1e-2, seed=0)
    _, B0, K0, conv0 = base["results"][0]

    states = []
    plan = FaultPlan([RankCrash(rank=2, superstep=25)])
    with pytest.raises(RankFailure):
        run_spmd(4, spmd_randqb_ei, A100, k=8, tol=1e-2, seed=0,
                 checkpoint_callback=states.append, fault_plan=plan,
                 recv_timeout=2.0, collective_timeout=10.0)
    assert states

    out = run_spmd(4, spmd_randqb_ei, A100, k=8, tol=1e-2, seed=0,
                   resume_from=states[-1])
    _, B, K, conv = out["results"][0]
    assert (K, conv) == (K0, conv0)
    # the RNG stream is restored exactly, so the resumed factors match
    np.testing.assert_allclose(B, B0, rtol=0, atol=1e-12)


def test_spmd_checkpoint_nprocs_mismatch(A100):
    states = []
    run_spmd(2, spmd_randqb_ei, A100, k=8, tol=1e-1, seed=0,
             checkpoint_callback=states.append)
    assert states
    with pytest.raises(CheckpointError):
        run_spmd(4, spmd_randqb_ei, A100, k=8, tol=1e-1, seed=0,
                 resume_from=states[-1])


# ---------------------------------------------------------------------------
# Sequential drivers: resume reproduces the uninterrupted run
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("cls,kw", [
    (RandQB_EI, dict(k=8, tol=1e-2, seed=0)),
    (LU_CRTP, dict(k=8, tol=1e-2)),
    (ILUT_CRTP, dict(k=8, tol=1e-2, estimated_iterations=8)),
])
def test_sequential_resume_matches_uninterrupted(A100, cls, kw):
    baseline = cls(**kw).solve(A100)
    states = []
    cls(checkpoint_callback=states.append, **kw).solve(A100)
    assert len(states) >= 2
    mid = states[max(0, len(states) // 2 - 1)]
    resumed = cls(**kw).solve(A100, resume_from=mid)
    assert resumed.rank == baseline.rank
    assert resumed.converged == baseline.converged
    assert resumed.indicator == pytest.approx(baseline.indicator, rel=1e-12)


def test_resume_from_final_checkpoint_returns_immediately(A100):
    states = []
    base = LU_CRTP(k=8, tol=1e-2,
                   checkpoint_callback=states.append).solve(A100)
    res = LU_CRTP(k=8, tol=1e-2).solve(A100, resume_from=states[-1])
    assert res.converged
    assert res.rank == base.rank
    assert len(res.history) == len(base.history)


def test_resume_wrong_kind_rejected(A100):
    states = []
    LU_CRTP(k=8, tol=1e-1, checkpoint_callback=states.append).solve(A100)
    with pytest.raises(CheckpointError):
        ILUT_CRTP(k=8, tol=1e-1, estimated_iterations=8).solve(
            A100, resume_from=states[-1])
    with pytest.raises(CheckpointError):
        RandQB_EI(k=8, tol=1e-1).solve(A100, resume_from=states[-1])


def test_checkpoint_path_roundtrip_sequential(A100, tmp_path):
    ckpt = tmp_path / "qb.ckpt.npz"
    base = RandQB_EI(k=8, tol=1e-2, seed=0,
                     checkpoint_path=ckpt).solve(A100)
    assert ckpt.exists()
    resumed = RandQB_EI(k=8, tol=1e-2, seed=0).solve(
        A100, resume_from=str(ckpt))
    assert resumed.rank == base.rank
    assert resumed.converged


# ---------------------------------------------------------------------------
# Recovery policies
# ---------------------------------------------------------------------------

def test_recovery_policy_validation():
    with pytest.raises(ValueError):
        RecoveryPolicy(on_rank_deficiency="retry")
    with pytest.raises(ValueError):
        RecoveryPolicy(on_cholesky_breakdown="raise")


def test_cholqr2_dense_fallback_is_logged():
    rng = np.random.default_rng(0)
    B = rng.standard_normal((20, 4))
    B[:, 3] = 0.0  # exactly rank-deficient: Cholesky must break down
    log = RecoveryLog()
    Q, R, clean = cholqr2(B, recovery_log=log)
    assert not clean
    assert log.count("cholqr_dense_fallback") == 1
    assert log.events[0].context["shape"] == [20, 4]
    # the fallback basis is still orthonormal and usable
    assert np.allclose(Q.T @ Q, np.eye(4), atol=1e-8)


def _flaky_iteration(state, fail_at):
    """Wrap LU_CRTP._iteration to raise one synthetic breakdown."""
    orig = LU_CRTP._iteration

    def flaky(self, active, k_i, i, r11_first):
        if i == fail_at and not state["tripped"]:
            state["tripped"] = True
            raise RankDeficiencyBreakdown("synthetic breakdown", iteration=i)
        return orig(self, active, k_i, i, r11_first)

    return flaky


def test_ilut_breakdown_recovers_to_exact(A100, monkeypatch):
    policy = RecoveryPolicy(max_recoveries=2)
    state = {"tripped": False}
    monkeypatch.setattr(LU_CRTP, "_iteration", _flaky_iteration(state, 3))
    res = ILUT_CRTP(k=8, tol=1e-2, estimated_iterations=4,
                    phi_factor=100.0, recovery=policy).solve(A100)
    assert state["tripped"]
    assert policy.log.count("ilut_undo_exact_fallback") == 1
    assert res.converged
    assert res.control_triggered  # thresholding disabled after recovery
    ev = policy.log.events[0]
    assert ev.action == "ilut_undo_exact_fallback"
    assert "undone_drop" in ev.context


def test_ilut_breakdown_without_policy_raises(A100, monkeypatch):
    state = {"tripped": False}
    monkeypatch.setattr(LU_CRTP, "_iteration", _flaky_iteration(state, 3))
    with pytest.raises(RankDeficiencyBreakdown):
        ILUT_CRTP(k=8, tol=1e-2, estimated_iterations=4,
                  phi_factor=100.0).solve(A100)


def test_ilut_recovery_budget_exhausted(A100, monkeypatch):
    policy = RecoveryPolicy(max_recoveries=0)
    state = {"tripped": False}
    monkeypatch.setattr(LU_CRTP, "_iteration", _flaky_iteration(state, 3))
    with pytest.raises(RankDeficiencyBreakdown):
        ILUT_CRTP(k=8, tol=1e-2, estimated_iterations=4,
                  phi_factor=100.0, recovery=policy).solve(A100)
