"""Tests for repro.solvers (CGLS and LU-accelerated solves)."""

import numpy as np
import scipy.sparse as sp

from repro import lu_crtp
from repro.solvers import KrylovResult, cgls, lowrank_accelerated_solve


def well_conditioned(rng, m=60, n=40):
    A = rng.standard_normal((m, n))
    return sp.csc_matrix(A + 0.0)


def test_cgls_consistent_square(rng):
    A = well_conditioned(rng, 30, 30)
    x_true = rng.standard_normal(30)
    b = A @ x_true
    res = cgls(A, b, tol=1e-12)
    assert res.converged
    np.testing.assert_allclose(res.x, x_true, atol=1e-6)


def test_cgls_least_squares(rng):
    A = well_conditioned(rng, 80, 30)
    b = rng.standard_normal(80)
    res = cgls(A, b, tol=1e-12)
    ref = np.linalg.lstsq(A.toarray(), b, rcond=None)[0]
    np.testing.assert_allclose(res.x, ref, atol=1e-6)


def test_cgls_min_norm_on_rank_deficient(rank_deficient):
    rng = np.random.default_rng(3)
    b = np.asarray(rank_deficient @ rng.standard_normal(50))
    res = cgls(rank_deficient, b, tol=1e-10)
    ref = np.linalg.lstsq(rank_deficient.toarray(), b, rcond=None)[0]
    np.testing.assert_allclose(res.x, ref, atol=1e-5)


def test_cgls_residual_history_decreases(rng):
    A = well_conditioned(rng)
    b = rng.standard_normal(60)
    res = cgls(A, b, tol=1e-10)
    r = res.residuals
    assert r[-1] < r[0]


def test_cgls_zero_rhs(rng):
    A = well_conditioned(rng)
    res = cgls(A, np.zeros(60))
    assert res.converged
    assert res.iterations == 0
    np.testing.assert_allclose(res.x, 0.0)


def test_cgls_max_iter_cap(rng):
    A = well_conditioned(rng)
    b = rng.standard_normal(60)
    res = cgls(A, b, tol=1e-14, max_iter=2)
    assert res.iterations <= 2


def test_cgls_warm_start(rng):
    A = well_conditioned(rng, 40, 40)
    x_true = rng.standard_normal(40)
    b = A @ x_true
    cold = cgls(A, b, tol=1e-10)
    warm = cgls(A, b, tol=1e-10, x0=x_true + 1e-6)
    assert warm.iterations <= cold.iterations


def test_lowrank_accelerated_solve(rng):
    """Deflating with the truncated LU pseudo-solution cuts iterations on
    an ill-conditioned graded matrix."""
    from repro.matrices.generators import random_graded
    A = random_graded(150, 150, nnz_per_row=8, decay_rate=10.0, seed=5)
    b = np.asarray(A @ rng.standard_normal(150))
    lu = lu_crtp(A, k=16, tol=1e-6)
    plain = cgls(A, b, tol=1e-6, max_iter=400)
    accel = lowrank_accelerated_solve(A, b, lu, tol=1e-6, max_iter=400)
    assert accel.iterations <= plain.iterations
    resid = np.linalg.norm(A @ accel.x - b) / np.linalg.norm(b)
    assert resid < 1e-4


def test_right_preconditioned_path(rng):
    from repro.core.apply import as_preconditioner
    from repro.matrices.generators import random_graded
    A = random_graded(100, 100, nnz_per_row=8, decay_rate=8.0, seed=6)
    lu = lu_crtp(A, k=16, tol=1e-8)
    M = as_preconditioner(lu)
    b = np.asarray(A @ rng.standard_normal(100))
    res = cgls(A, b, tol=1e-8, right_inverse=M, max_iter=50)
    resid = np.linalg.norm(A @ res.x - b) / np.linalg.norm(b)
    assert resid < 1e-5


def test_result_dataclass():
    r = KrylovResult(x=np.zeros(2), converged=True, iterations=3,
                     residuals=[0.1])
    assert r.iterations == 3
