"""Tests for repro.validation (user-facing result validator)."""


from repro import ilut_crtp, lu_crtp, randqb_ei, randubv
from repro.validation import ValidationReport, validate_result


def test_qb_result_validates(small_sparse):
    res = randqb_ei(small_sparse, k=8, tol=1e-2)
    rep = validate_result(res, small_sparse)
    assert rep.ok, rep.summary()
    assert "q_orthonormal" in rep.checks


def test_ubv_result_validates(small_sparse):
    res = randubv(small_sparse, k=8, tol=1e-2)
    rep = validate_result(res, small_sparse)
    assert rep.ok, rep.summary()
    assert "u_orthonormal" in rep.checks and "v_orthonormal" in rep.checks


def test_lu_result_validates(small_sparse):
    res = lu_crtp(small_sparse, k=8, tol=1e-2)
    rep = validate_result(res, small_sparse)
    assert rep.ok, rep.summary()
    for name in ("row_perm_valid", "col_perm_valid", "l_unit_diagonal",
                 "factors_finite"):
        assert name in rep.checks


def test_ilut_result_validates(small_sparse):
    res = ilut_crtp(small_sparse, k=8, tol=1e-2, estimated_iterations=4)
    rep = validate_result(res, small_sparse)
    assert rep.ok, rep.summary()
    assert "indicator_within_perturbation" in rep.checks


def test_detects_corrupted_factors(small_sparse):
    res = lu_crtp(small_sparse, k=8, tol=1e-2)
    res.L = res.L.copy()
    res.L.data[:] = res.L.data * 3.0  # corrupt
    rep = validate_result(res, small_sparse)
    assert not rep.ok
    assert rep.failures


def test_detects_corrupted_q(small_sparse):
    res = randqb_ei(small_sparse, k=8, tol=1e-2)
    res.Q = res.Q * 2.0
    rep = validate_result(res, small_sparse)
    assert "q_orthonormal" in rep.failures


def test_summary_readable(small_sparse):
    res = lu_crtp(small_sparse, k=8, tol=1e-2)
    text = validate_result(res, small_sparse).summary()
    assert "PASS" in text
    assert "rank_consistent" in text


def test_report_api():
    rep = ValidationReport()
    rep.add("a", True, "fine")
    rep.add("b", False, "broken")
    assert not rep.ok
    assert rep.failures == ["b"]
    assert "FAIL" in rep.summary()
