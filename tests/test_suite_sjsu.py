"""Tests for repro.matrices.suite and repro.matrices.sjsu."""

import pytest

from repro.matrices.sjsu import sjsu_collection
from repro.matrices.suite import suite_entries, suite_matrix


def test_suite_has_six_entries():
    entries = suite_entries()
    assert [e.label for e in entries] == ["M1", "M2", "M3", "M4", "M5", "M6"]
    names = {e.paper_name for e in entries}
    assert "raefsky3" in names and "circuit5M_dc" in names


def test_suite_matrix_lookup():
    A = suite_matrix("M1")
    assert A.shape[0] == A.shape[1]
    assert A.nnz > 0
    B = suite_matrix("m1")  # case-insensitive
    assert (A != B).nnz == 0


def test_suite_matrix_unknown():
    with pytest.raises(KeyError):
        suite_matrix("M9")


def test_suite_scale():
    small = suite_matrix("M3", scale=0.25)
    full = suite_matrix("M3")
    assert small.shape[0] < full.shape[0]


def test_suite_deterministic():
    A = suite_matrix("M2")
    B = suite_matrix("M2")
    assert (A != B).nnz == 0


def test_m4_has_one_iteration_regime():
    """The rajat23 analogue converges at tau=0.1 within very few blocks."""
    from repro import randqb_ei
    A = suite_matrix("M4", scale=0.5)
    res = randqb_ei(A, k=32, tol=1e-1)
    assert res.iterations <= 4


def test_sjsu_collection_size_and_diversity():
    cases = sjsu_collection()
    assert len(cases) >= 100
    kinds = {c.kind for c in cases}
    assert {"graded", "lowrank", "grid", "kahan", "circuit",
            "diagonal", "integer"} <= kinds


def test_sjsu_unique_names():
    cases = sjsu_collection()
    names = [c.name for c in cases]
    assert len(names) == len(set(names))


def test_sjsu_skip_flags():
    cases = sjsu_collection()
    skipped = [c for c in cases if c.skip_reason]
    assert skipped  # diagonal + integer classes flagged
    assert all(c.kind in ("diagonal", "integer") for c in skipped)
    no_skip = sjsu_collection(include_skipped=False)
    assert all(not c.skip_reason for c in no_skip)


def test_sjsu_numerical_rank_cached():
    cases = sjsu_collection(max_cases=5)
    c = cases[0]
    r1 = c.numerical_rank
    r2 = c.numerical_rank
    assert r1 == r2
    assert 0 < r1 <= min(c.shape)


def test_sjsu_lowrank_cases_are_rank_deficient():
    cases = [c for c in sjsu_collection() if c.kind == "lowrank"]
    assert cases
    for c in cases[:3]:
        assert c.numerical_rank < min(c.shape)


def test_sjsu_max_cases():
    assert len(sjsu_collection(max_cases=7)) == 7


def test_sjsu_matrices_sparse():
    for c in sjsu_collection(max_cases=20):
        assert c.matrix.format == "csc"
        assert c.matrix.nnz > 0
