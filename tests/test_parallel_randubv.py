"""Tests for the parallel RandUBV (§VI-B future work implemented)."""

import numpy as np
import pytest

from repro import randubv
from repro.parallel import run_spmd, simulate_randubv, spmd_randubv


@pytest.fixture(scope="module")
def A120():
    from repro.matrices.generators import random_graded
    return random_graded(120, 120, nnz_per_row=7, decay_rate=7.0, seed=21)


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_spmd_randubv_converges(A120, nprocs):
    out = run_spmd(nprocs, spmd_randubv, A120, k=8, tol=1e-2, seed=0)
    Uloc, B, V, K, conv = out["results"][0]
    assert conv
    U = np.vstack([r[0] for r in out["results"]])
    D = A120.toarray()
    err = np.linalg.norm(D - U @ B @ V.T) / np.linalg.norm(D)
    assert err < 1e-2
    # orthonormal factors
    assert np.linalg.norm(U.T @ U - np.eye(U.shape[1])) < 1e-8
    assert np.linalg.norm(V.T @ V - np.eye(V.shape[1])) < 1e-8


def test_spmd_matches_sequential_rank(A120):
    seq = randubv(A120, k=8, tol=1e-2, seed=0)
    out = run_spmd(4, spmd_randubv, A120, k=8, tol=1e-2, seed=0)
    _, _, _, K, _ = out["results"][0]
    assert K == seq.rank  # same RNG stream


def test_spmd_b_replicated(A120):
    out = run_spmd(3, spmd_randubv, A120, k=8, tol=1e-1, seed=0)
    B0 = out["results"][0][1]
    for r in out["results"][1:]:
        np.testing.assert_allclose(r[1], B0, atol=1e-12)


def test_perfmodel_report(A120):
    seq = randubv(A120, k=8, tol=1e-2, seed=0)
    rep = simulate_randubv(seq, A120, 8, k=8)
    assert rep.algorithm == "RandUBV"
    assert rep.iterations == seq.iterations
    for kernel in ("spmm", "tsqr", "reorth_v"):
        assert kernel in rep.kernel_seconds
    assert rep.total_seconds > 0


def test_perfmodel_comparable_to_randqb_p0(A120):
    """Section IV: RandUBV ~ RandQB_EI(p=0) per-iteration work."""
    from repro import randqb_ei
    from repro.parallel import simulate_randqb_ei
    seq_ubv = randubv(A120, k=8, tol=1e-2, seed=0)
    seq_qb = randqb_ei(A120, k=8, tol=1e-2, power=0, seed=0)
    t_ubv = simulate_randubv(seq_ubv, A120, 4, k=8).total_seconds \
        / max(seq_ubv.iterations, 1)
    t_qb = simulate_randqb_ei(seq_qb, A120, 4, k=8,
                              power=0).total_seconds \
        / max(seq_qb.iterations, 1)
    assert 0.2 < t_ubv / t_qb < 5.0


def test_perfmodel_scales_initially(A120):
    seq = randubv(A120, k=8, tol=1e-2, seed=0)
    t1 = simulate_randubv(seq, A120, 1, k=8).total_seconds
    t4 = simulate_randubv(seq, A120, 4, k=8).total_seconds
    assert t4 < t1
