"""Tests for the related-work baselines (RRF, ARRF, RandQB_b, AdaptiveRSVD)."""

import numpy as np
import pytest

from repro.core.arrf import AdaptiveRangeFinder, adaptive_range_finder
from repro.core.randqb_b import randqb_b
from repro.core.rrf import randomized_qb, randomized_range_finder
from repro.core.rsvd import AdaptiveRSVD, adaptive_rsvd


def test_rrf_basis_orthonormal(small_sparse):
    Q = randomized_range_finder(small_sparse, 10)
    assert Q.shape == (60, 10)
    assert np.linalg.norm(Q.T @ Q - np.eye(10)) < 1e-10


def test_rrf_captures_range(rng):
    from repro.matrices.generators import random_graded
    A = random_graded(100, 100, nnz_per_row=6, decay_rate=16.0, seed=1)
    Q = randomized_range_finder(A, 40, power=1)
    D = A.toarray()
    resid = np.linalg.norm(D - Q @ (Q.T @ D)) / np.linalg.norm(D)
    # optimal rank-30 error as the yardstick: RRF(40) must get close
    s = np.linalg.svd(D, compute_uv=False)
    optimal30 = np.sqrt(np.sum(s[30:] ** 2)) / np.linalg.norm(D)
    assert resid < 3 * optimal30


def test_rrf_power_improves(rng):
    from repro.matrices.generators import random_graded
    A = random_graded(120, 120, nnz_per_row=6, decay_rate=2.0, seed=2)
    D = A.toarray()

    def resid(p):
        Q = randomized_range_finder(A, 20, power=p, seed=0)
        return np.linalg.norm(D - Q @ (Q.T @ D))

    assert resid(2) <= resid(0) * 1.0001


def test_rrf_invalid_rank(small_sparse):
    with pytest.raises(ValueError):
        randomized_range_finder(small_sparse, 0)


def test_randomized_qb(small_sparse):
    Q, B = randomized_qb(small_sparse, 12)
    np.testing.assert_allclose(B, Q.T @ small_sparse.toarray(), atol=1e-9)


def test_arrf_converges(small_sparse):
    res = adaptive_range_finder(small_sparse, tol=1e-2)
    assert res.converged
    assert res.error(small_sparse) < 1e-2


def test_arrf_rank_grows_one_at_a_time(small_sparse):
    res = adaptive_range_finder(small_sparse, tol=1e-1)
    ranks = [r.rank for r in res.history]
    assert all(b - a == 1 for a, b in zip(ranks, ranks[1:]))


def test_arrf_overshoots_vs_randqb(small_sparse):
    """§I-A: ARRF's probe-based estimator is less precise than RandQB_EI's
    indicator — it typically needs more rank for the same target."""
    from repro import randqb_ei
    arrf = adaptive_range_finder(small_sparse, tol=1e-2)
    qb = randqb_ei(small_sparse, k=1, tol=1e-2)
    assert arrf.rank >= qb.rank - 2


def test_arrf_max_rank(small_sparse):
    res = AdaptiveRangeFinder(tol=1e-8, max_rank=10).solve(small_sparse)
    assert res.rank <= 10


def test_randqb_b_warns_on_sparse(small_sparse):
    with pytest.warns(RuntimeWarning, match="densifies"):
        res = randqb_b(small_sparse, k=8, tol=1e-2)
    assert res.converged


def test_randqb_b_exact_residual(rng):
    A = rng.standard_normal((50, 50)) @ np.diag(np.logspace(0, -5, 50))
    res = randqb_b(A, k=8, tol=1e-2)
    # RandQB_b measures the residual exactly (dense update), so indicator
    # equals true error to machine precision
    assert res.error(A) == pytest.approx(res.relative_indicator(), rel=1e-8)


def test_randqb_b_densifies_residual(small_sparse):
    with pytest.warns(RuntimeWarning):
        res = randqb_b(small_sparse, k=8, tol=1e-2)
    # the recorded residual nnz exceeds the input's nnz: densification
    assert res.history[0].schur_nnz > small_sparse.nnz


def test_adaptive_rsvd_converges(small_sparse):
    res = adaptive_rsvd(small_sparse, tol=1e-2, initial_rank=4)
    assert res.converged
    assert res.error(small_sparse) < 1e-2


def test_adaptive_rsvd_rank_doubles(small_sparse):
    res = AdaptiveRSVD(initial_rank=4, tol=1e-3).solve(small_sparse)
    ranks = [r.rank for r in res.history]
    for a, b in zip(ranks, ranks[1:]):
        assert b >= min(2 * a, 60)


def test_adaptive_rsvd_wasted_work_metric(small_sparse):
    res = AdaptiveRSVD(initial_rank=4, tol=1e-3).solve(small_sparse)
    total = AdaptiveRSVD.total_sketch_columns(res.history)
    assert total >= res.rank  # restarts re-do earlier columns


def test_adaptive_rsvd_growth_validation():
    with pytest.raises(ValueError):
        AdaptiveRSVD(growth=1.0)
