"""Tests for repro.linalg.tsqr."""

import numpy as np
import pytest

from repro.linalg.tsqr import tsqr


@pytest.mark.parametrize("m,c,block", [(100, 5, 16), (64, 8, 8),
                                       (1000, 3, 128), (37, 4, 10)])
def test_tsqr_reconstruction(rng, m, c, block):
    A = rng.standard_normal((m, c))
    Q, R = tsqr(A, block_rows=block)
    assert Q.shape == (m, c)
    assert R.shape == (c, c)
    np.testing.assert_allclose(Q @ R, A, atol=1e-10)
    assert np.linalg.norm(Q.T @ Q - np.eye(c)) < 1e-12
    assert np.allclose(R, np.triu(R))


def test_tsqr_single_block_path(rng):
    A = rng.standard_normal((20, 6))
    Q, R = tsqr(A, block_rows=64)  # m <= block: direct QR
    np.testing.assert_allclose(Q @ R, A, atol=1e-12)


def test_tsqr_matches_direct_qr_up_to_signs(rng):
    A = rng.standard_normal((300, 7))
    Q, R = tsqr(A, block_rows=32)
    Qd, Rd = np.linalg.qr(A, mode="reduced")
    signs = np.sign(np.diag(R)) * np.sign(np.diag(Rd))
    np.testing.assert_allclose(R, Rd * signs[:, None] if False else
                               (signs[:, None] * Rd), atol=1e-10)


def test_tsqr_odd_leaf_count(rng):
    # 5 leaves: exercises the bye branch of the reduction tree
    A = rng.standard_normal((5 * 13, 4))
    Q, R = tsqr(A, block_rows=13)
    np.testing.assert_allclose(Q @ R, A, atol=1e-10)


def test_tsqr_requires_tall():
    with pytest.raises(ValueError):
        tsqr(np.zeros((3, 5)))


def test_tsqr_zero_columns():
    Q, R = tsqr(np.zeros((10, 0)))
    assert Q.shape == (10, 0)
    assert R.shape == (0, 0)


def test_tsqr_rank_deficient(rng):
    A = rng.standard_normal((200, 2)) @ rng.standard_normal((2, 6))
    Q, R = tsqr(A, block_rows=32)
    np.testing.assert_allclose(Q @ R, A, atol=1e-10)
    assert np.linalg.norm(Q.T @ Q - np.eye(6)) < 1e-10
