"""Tests for repro.linalg.wy (blocked compact-WY Householder QR)."""

import numpy as np
import pytest

from repro.linalg.wy import (
    blocked_qr,
    panel_qr,
    wy_apply_left,
    wy_apply_left_transpose,
)


def test_panel_qr_wy_identity(rng):
    """Q = I - V T V^T is orthogonal and triangularizes the panel."""
    A = rng.standard_normal((20, 6))
    V, T, R = panel_qr(A)
    Q = np.eye(20) - V @ T @ V.T
    np.testing.assert_allclose(Q.T @ Q, np.eye(20), atol=1e-12)
    QtA = Q.T @ A
    np.testing.assert_allclose(QtA[:6], R, atol=1e-12)
    np.testing.assert_allclose(QtA[6:], 0.0, atol=1e-12)


def test_panel_qr_v_unit_lower(rng):
    A = rng.standard_normal((10, 4))
    V, T, _ = panel_qr(A)
    np.testing.assert_allclose(np.diag(V[:4]), 1.0)
    assert np.allclose(np.triu(V[:4], k=1), 0.0)
    assert np.allclose(T, np.triu(T))


def test_wy_apply_matches_explicit(rng):
    A = rng.standard_normal((15, 5))
    V, T, _ = panel_qr(A)
    Q = np.eye(15) - V @ T @ V.T
    C = rng.standard_normal((15, 7))
    np.testing.assert_allclose(wy_apply_left(V, T, C), Q @ C, atol=1e-12)
    np.testing.assert_allclose(wy_apply_left_transpose(V, T, C), Q.T @ C,
                               atol=1e-12)


@pytest.mark.parametrize("m,n,block", [(40, 24, 8), (50, 50, 16),
                                       (30, 12, 5), (25, 10, 32)])
def test_blocked_qr_reconstruction(rng, m, n, block):
    A = rng.standard_normal((m, n))
    Q, R = blocked_qr(A, block=block)
    p = min(m, n)
    assert Q.shape == (m, p)
    assert R.shape == (p, n)
    np.testing.assert_allclose(Q @ R, A, atol=1e-11)
    np.testing.assert_allclose(Q.T @ Q, np.eye(p), atol=1e-12)
    assert np.allclose(R, np.triu(R))


def test_blocked_matches_numpy_up_to_signs(rng):
    A = rng.standard_normal((30, 10))
    Q, R = blocked_qr(A, block=4)
    Qd, Rd = np.linalg.qr(A, mode="reduced")
    signs = np.sign(np.diag(R) * np.diag(Rd))
    np.testing.assert_allclose(R, signs[:, None] * Rd, atol=1e-10)


def test_blocked_qr_graded(rng):
    A = rng.standard_normal((40, 12)) @ np.diag(np.logspace(0, -10, 12))
    Q, R = blocked_qr(A, block=4)
    np.testing.assert_allclose(Q @ R, A, atol=1e-12)
