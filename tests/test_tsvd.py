"""Tests for repro.core.tsvd (TSVD reference)."""

import numpy as np
import pytest

from repro.core.tsvd import eckart_young_error, spectrum, truncated_svd


def test_truncated_svd_dense_path(rng):
    A = rng.standard_normal((30, 20))
    U, s, Vt = truncated_svd(A, 5)
    ref = np.linalg.svd(A, compute_uv=False)[:5]
    np.testing.assert_allclose(s, ref, rtol=1e-12)
    assert U.shape == (30, 5)
    assert Vt.shape == (5, 20)


def test_truncated_svd_lanczos_path(small_sparse):
    # force the Lanczos route with a tiny dense cutoff
    U, s, Vt = truncated_svd(small_sparse, 4, dense_cutoff=10)
    ref = np.linalg.svd(small_sparse.toarray(), compute_uv=False)[:4]
    np.testing.assert_allclose(s, ref, rtol=1e-6)


def test_truncated_svd_is_optimal(small_sparse):
    """Eckart-Young: no solver can beat the TSVD error at equal rank."""
    from repro import randqb_ei
    k = 8
    U, s, Vt = truncated_svd(small_sparse, k)
    tsvd_err = np.linalg.norm(small_sparse.toarray() - (U * s) @ Vt)
    res = randqb_ei(small_sparse, k=k, tol=1e-1, max_rank=k)
    qb_err = np.linalg.norm(small_sparse.toarray() - res.Q @ res.B)
    assert tsvd_err <= qb_err + 1e-9


def test_truncated_svd_invalid_k(small_sparse):
    with pytest.raises(ValueError):
        truncated_svd(small_sparse, 0)


def test_spectrum_full(small_sparse):
    s = spectrum(small_sparse)
    assert s.shape == (60,)
    ref = np.linalg.svd(small_sparse.toarray(), compute_uv=False)
    np.testing.assert_allclose(s, ref, rtol=1e-10)


def test_eckart_young_error():
    s = np.array([3.0, 2.0, 1.0])
    assert eckart_young_error(s, 1) == pytest.approx(np.sqrt(5.0))
    assert eckart_young_error(s, 3) == 0.0
    assert eckart_young_error(s, 0) == pytest.approx(np.linalg.norm(s))
