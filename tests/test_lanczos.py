"""Tests for repro.linalg.lanczos (Golub-Kahan-Lanczos SVD)."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.linalg.lanczos import golub_kahan_svd, singular_values


def test_matches_dense_svd(rng):
    A = rng.standard_normal((60, 40))
    U, s, Vt = golub_kahan_svd(A, 5)
    s_ref = np.linalg.svd(A, compute_uv=False)[:5]
    np.testing.assert_allclose(s, s_ref, rtol=1e-8)
    # triplets reconstruct the dominant subspace
    np.testing.assert_allclose(A @ Vt.T, U * s, atol=1e-6)


def test_matches_scipy_svds_on_sparse(small_sparse):
    U, s, Vt = golub_kahan_svd(small_sparse, 6)
    s_ref = np.sort(spla.svds(small_sparse, k=6,
                              return_singular_vectors=False))[::-1]
    np.testing.assert_allclose(s, s_ref, rtol=1e-6)


def test_orthonormal_factors(rng):
    A = rng.standard_normal((50, 50))
    U, s, Vt = golub_kahan_svd(A, 8)
    assert np.linalg.norm(U.T @ U - np.eye(8)) < 1e-8
    assert np.linalg.norm(Vt @ Vt.T - np.eye(8)) < 1e-8


def test_descending_order(rng):
    A = rng.standard_normal((30, 30))
    s = singular_values(A, 10)
    assert np.all(np.diff(s) <= 1e-12)


def test_low_rank_input(rank_deficient):
    # rank-12 matrix: requesting more triplets pads with zeros
    U, s, Vt = golub_kahan_svd(rank_deficient, 20)
    assert s.shape == (20,)
    assert np.all(s[:12] > 0)
    assert np.all(s[13:] < 1e-8 * s[0])


def test_zero_matrix():
    A = sp.csc_matrix((10, 8))
    U, s, Vt = golub_kahan_svd(A, 3)
    assert np.allclose(s, 0)
    assert U.shape == (10, 3)
    assert Vt.shape == (3, 8)


def test_invalid_k(rng):
    with pytest.raises(ValueError):
        golub_kahan_svd(rng.standard_normal((5, 5)), 0)
    with pytest.raises(ValueError):
        golub_kahan_svd(rng.standard_normal((5, 5)), 6)


def test_rectangular_orientations(rng):
    for shape in ((40, 15), (15, 40)):
        A = rng.standard_normal(shape)
        _, s, _ = golub_kahan_svd(A, 4)
        ref = np.linalg.svd(A, compute_uv=False)[:4]
        np.testing.assert_allclose(s, ref, rtol=1e-8)
