"""End-to-end tests for the asyncio solve service (all in-process)."""

import asyncio
import threading

import pytest
import scipy.sparse as sp

from repro.api import SolverConfig
from repro.exceptions import QueueFullError
from repro.service import (
    METRICS_SCHEMA,
    RESPONSE_SCHEMA,
    JobQueue,
    JobRecord,
    MatrixSpec,
    ServiceClient,
    SolveRequest,
    SolveService,
    matrix_fingerprint,
    serve_tcp,
)

M4 = MatrixSpec(suite="M4", scale=0.5)
TINY_MMIO = """%%MatrixMarket matrix coordinate real general
4 4 6
1 1 4.0
2 2 3.0
3 3 2.0
4 4 1.0
1 2 0.5
2 1 0.5
"""


def lu_request(tol=1e-2, **kw):
    return SolveRequest(matrix=M4, method="lu",
                        config=SolverConfig(k=16, tol=tol), **kw)


# -- wire schemas -----------------------------------------------------------

def test_request_wire_roundtrip():
    req = lu_request(priority=3, timeout=2.5, nprocs=2)
    back = SolveRequest.from_dict(req.to_dict())
    assert back.matrix == req.matrix
    assert back.method == "lu"
    assert back.config == req.config
    assert (back.priority, back.timeout, back.nprocs) == (3, 2.5, 2)


def test_matrix_spec_exactly_one_source():
    with pytest.raises(ValueError):
        MatrixSpec()
    with pytest.raises(ValueError):
        MatrixSpec(suite="M1", mmio=TINY_MMIO)


def test_matrix_spec_mmio_load():
    A = MatrixSpec(mmio=TINY_MMIO).load()
    assert A.shape == (4, 4) and A.nnz == 6


def test_fingerprint_canonical():
    A = sp.random(40, 30, density=0.1, random_state=0, format="csr")
    assert matrix_fingerprint(A) == matrix_fingerprint(A.tocsc())
    B = A.copy()
    B.data[0] += 1.0
    assert matrix_fingerprint(A) != matrix_fingerprint(B)


def test_queue_priority_and_drain():
    async def run():
        q = JobQueue(limit=8)
        recs = [JobRecord(job_id=f"j{i}", request=lu_request(priority=p))
                for i, p in enumerate([0, 5, 1])]
        for r in recs:
            q.put_nowait(r)
        first = await q.get()
        assert first.job_id == "j1"  # highest priority first
        assert [j.job_id for j in
                q.drain_matching(first.request.batch_group())] == ["j2", "j0"]
        assert q.depth == 0
    asyncio.run(run())


# -- cache: miss → hit → τ-dominance ---------------------------------------

def test_smoke_miss_then_hit():
    with ServiceClient(workers=1, cache_capacity=8) as client:
        first = client.solve(lu_request())
        assert first["schema"] == RESPONSE_SCHEMA
        assert first["state"] == "done"
        assert first["cache"] == "miss"
        assert first["result"]["schema"] == "repro.result/v1"
        assert first["result"]["converged"]

        again = client.solve(lu_request())
        assert again["cache"] == "hit"
        assert again["result"]["rank"] == first["result"]["rank"]

        m = client.metrics()
        assert m["schema"] == METRICS_SCHEMA
        assert m["counters"]["cache_hits"] == 1
        assert m["counters"]["cache_misses"] == 1
        assert m["cache"]["hit_rate"] == pytest.approx(0.5)
        assert m["counters"]["completed"] == 2
        assert m["latency"]["count"] == 2
        assert m["latency"]["p95"] >= m["latency"]["p50"] >= 0.0


def test_tau_dominance_reuse():
    """A cached tighter factorization satisfies a looser request."""
    with ServiceClient(workers=1) as client:
        tight = client.solve(lu_request(tol=1e-3))
        assert tight["cache"] == "miss"
        loose = client.solve(lu_request(tol=1e-1))
        assert loose["cache"] == "dominated"
        assert loose["result"] == tight["result"]
        # but a *tighter* request than the cached entry must re-solve
        tighter = client.solve(lu_request(tol=1e-4))
        assert tighter["cache"] == "miss"
        counters = client.metrics()["counters"]
        assert counters["cache_dominated_hits"] == 1


# -- eviction + resume ------------------------------------------------------

def test_timeout_evicts_with_resumable_checkpoint():
    matrix = MatrixSpec(suite="M2", scale=0.5)

    def req(**kw):
        return SolveRequest(matrix=matrix, method="lu",
                            config=SolverConfig(k=8, tol=1e-3), **kw)

    with ServiceClient(workers=1) as client:
        jid = client.submit(req(timeout=0.05))
        resp = client.wait(jid)
        assert resp["state"] == "evicted"
        assert resp["resumable"] is True
        assert resp["error_type"] == "JobTimeoutError"
        state = client.checkpoint_for(jid)
        assert state is not None and "K" in state
        assert client.metrics()["counters"]["evicted"] == 1

        resumed = client.solve(req(resume_from=jid))
        assert resumed["state"] == "done"
        assert resumed["result"]["converged"]
        # the resumed run continues past the checkpointed rank
        assert resumed["result"]["rank"] > state["K"]


def test_resume_from_unknown_job_fails():
    with ServiceClient(workers=1) as client:
        resp = client.solve(lu_request(resume_from="job-999999"))
        assert resp["state"] == "failed"
        assert "no checkpoint" in resp["error"]


# -- batching ---------------------------------------------------------------

def test_batching_shares_one_factorization():
    async def run():
        svc = SolveService(workers=1, batching=True)
        reqs = [SolveRequest(matrix=M4, method="randqb",
                             config=SolverConfig(k=16, tol=tol, power=1))
                for tol in (2e-1, 5e-2)]
        # submit before starting workers so the jobs co-reside in the
        # queue and are drained as one batch group
        ids = [await svc.submit(r) for r in reqs]
        async with svc:
            resps = [await svc.wait(j, timeout=300) for j in ids]
        return resps, svc.metrics_snapshot()

    (loose, tight), m = asyncio.run(run())
    # the batch ran once at the tightest tolerance; the looser job rode
    # along without its own factorization
    assert tight["cache"] == "miss"
    assert loose["cache"] == "batched"
    assert loose["result"] == tight["result"]
    assert m["counters"]["batched"] == 1
    assert m["counters"]["cache_misses"] == 2
    assert m["counters"]["completed"] == 2


def test_batching_disabled_runs_each_job():
    async def run():
        svc = SolveService(workers=1, batching=False, cache_capacity=0)
        ids = [await svc.submit(lu_request()) for _ in range(2)]
        async with svc:
            return [await svc.wait(j, timeout=300) for j in ids], \
                svc.metrics_snapshot()

    resps, m = asyncio.run(run())
    assert [r["cache"] for r in resps] == ["miss", "miss"]
    assert m["counters"]["batched"] == 0


# -- backpressure -----------------------------------------------------------

def test_queue_full_backpressure():
    async def run():
        svc = SolveService(workers=1, queue_limit=2)  # not started
        await svc.submit(lu_request())
        await svc.submit(lu_request())
        with pytest.raises(QueueFullError):
            await svc.submit(lu_request())
        return svc.metrics_snapshot()

    m = asyncio.run(run())
    assert m["counters"]["rejected"] == 1
    assert m["queue_depth"] == 2


# -- failures ---------------------------------------------------------------

def test_bad_matrix_marks_job_failed():
    bad = SolveRequest(matrix=MatrixSpec(path="/nonexistent/m.mtx"),
                       method="lu", config=SolverConfig(k=8))
    with ServiceClient(workers=1) as client:
        resp = client.solve(bad)
        assert resp["state"] == "failed"
        assert resp["error"]
        assert client.metrics()["counters"]["failed"] == 1
        # the worker survives a failed job
        ok = client.solve(lu_request())
        assert ok["state"] == "done"


# -- SPMD route -------------------------------------------------------------

def test_spmd_job_through_service():
    req = SolveRequest(matrix=M4, method="randqb", nprocs=2,
                       config=SolverConfig(k=16, tol=1e-1, power=1))
    with ServiceClient(workers=1) as client:
        resp = client.solve(req)
        assert resp["state"] == "done"
        assert resp["result"]["converged"]
        assert client.metrics()["counters"]["spmd_jobs"] == 1


# -- TCP loopback -----------------------------------------------------------

def test_tcp_loopback():
    port_box = {}
    ready = threading.Event()

    def on_ready(server):
        port_box["port"] = server.sockets[0].getsockname()[1]
        ready.set()

    thread = threading.Thread(
        target=lambda: asyncio.run(
            serve_tcp("127.0.0.1", 0, ready_callback=on_ready, workers=1)),
        daemon=True)
    thread.start()
    assert ready.wait(30), "server never came up"

    client = ServiceClient.connect("127.0.0.1", port_box["port"])
    try:
        first = client.solve(lu_request().to_dict())
        assert first["state"] == "done" and first["cache"] == "miss"
        again = client.solve(lu_request().to_dict())
        assert again["cache"] == "hit"
        m = client.metrics()
        assert m["schema"] == METRICS_SCHEMA
        assert m["counters"]["cache_hits"] == 1
    finally:
        client.close()  # sends the shutdown op
    thread.join(timeout=30)
    assert not thread.is_alive()
