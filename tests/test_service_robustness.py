"""Robustness of the serving stack: durable cache, supervision, chaos.

Covers the survivability contracts added around the solve service:

- **Durable cache tier** — a restarted service pointed at the same
  ``cache_dir`` serves previous (and τ-dominated) requests from disk
  without recomputation; corrupted spills are quarantined, never fatal.
- **Supervision** — a killed worker is restarted and its in-flight jobs
  requeued idempotently; requeues are bounded by a typed
  ``WorkerCrashError``; nothing accepted is ever lost.
- **Overload + breaker** — saturation sheds with a typed
  ``ServiceOverloadError`` carrying ``retry_after``; a failing method
  opens its circuit breaker and recovers through a half-open probe.
- **TCP robustness** — typed errors cross the wire with their retry
  metadata; a severed connection is survived by the reconnecting
  client (idempotent resend through the content-addressed cache).
- Satellite (d): a job evicted at its deadline while the LRU cache is
  churning resolves exactly once, with one typed error — no hang, no
  double completion.
"""

import asyncio
import threading
import time

import pytest

from repro.api import SolverConfig, make_solver
from repro.exceptions import (
    CircuitOpenError,
    QueueFullError,
    ServiceError,
    ServiceOverloadError,
)
from repro.parallel.faults import CacheCorruption, ConnectionSever, WorkerKill
from repro.service import (
    ChaosDriver,
    CircuitBreaker,
    DiskCacheTier,
    JobRecord,
    JobState,
    MatrixSpec,
    ServiceClient,
    SolveRequest,
    SolveService,
    matrix_fingerprint,
)

M4 = MatrixSpec(suite="M4", scale=0.5)


def lu_request(tol=1e-2, **kw):
    return SolveRequest(matrix=M4, method="lu",
                        config=SolverConfig(k=16, tol=tol), **kw)


def _tcp_server(**service_opts):
    """Start serve_tcp on an ephemeral port; returns (thread, port)."""
    from repro.service import serve_tcp
    port_box = {}
    ready = threading.Event()

    def on_ready(server):
        port_box["port"] = server.sockets[0].getsockname()[1]
        ready.set()

    thread = threading.Thread(
        target=lambda: asyncio.run(
            serve_tcp("127.0.0.1", 0, ready_callback=on_ready,
                      **service_opts)),
        daemon=True)
    thread.start()
    assert ready.wait(30), "server never came up"
    return thread, port_box["port"]


# ---------------------------------------------------------------------------
# Durable cache tier
# ---------------------------------------------------------------------------

def test_disk_tier_survives_service_restart(tmp_path):
    cache_dir = tmp_path / "spill"
    with ServiceClient(workers=1, cache_dir=str(cache_dir)) as client:
        first = client.solve(lu_request())
        assert first["state"] == "done" and first["cache"] == "miss"

    # a *fresh* service process image: empty memory cache, same directory
    with ServiceClient(workers=1, cache_dir=str(cache_dir)) as client:
        again = client.solve(lu_request())
        assert again["cache"] == "disk"
        assert again["result"] == first["result"]
        disk = client.metrics()["cache"]["disk"]
        assert disk["hits"] == 1 and disk["entries"] == 1
        # promoted into memory: the next lookup is a plain hit
        third = client.solve(lu_request())
        assert third["cache"] == "hit"


def test_disk_tier_tau_dominance_across_restart(tmp_path):
    cache_dir = tmp_path / "spill"
    with ServiceClient(workers=1, cache_dir=str(cache_dir)) as client:
        tight = client.solve(lu_request(tol=1e-3))
        assert tight["cache"] == "miss"

    with ServiceClient(workers=1, cache_dir=str(cache_dir)) as client:
        loose = client.solve(lu_request(tol=1e-1))
        assert loose["cache"] == "disk"  # tighter spill dominates τ=1e-1
        assert loose["result"] == tight["result"]


def _store_one_entry(tier, tol=1e-2):
    A = M4.load()
    result = make_solver("lu", SolverConfig(k=16, tol=tol)).solve(A)
    key = (matrix_fingerprint(A), "lu",
           SolverConfig(k=16, tol=tol).cache_key())
    assert tier.store(key, tol, result, result.to_json())
    return key, result


@pytest.mark.parametrize("kind", ["truncate", "garbage"])
def test_corrupted_spill_is_quarantined_not_fatal(tmp_path, kind):
    tier = DiskCacheTier(tmp_path / "spill")
    key, _ = _store_one_entry(tier)
    driver = ChaosDriver(seed=3)
    hit = driver.apply(CacheCorruption(kind=kind, count=1), tier=tier)
    assert len(hit) == 1

    assert tier.lookup(key, 1e-2) is None  # damaged entry == miss
    assert tier.corrupt == 1
    assert tier.entry_count() == 0
    assert len(list(tier.quarantine_dir.iterdir())) == 2  # npz + sidecar
    ops = [r["op"] for r in tier.journal_records()]
    assert ops == ["store", "quarantine"]

    # the tier still accepts and serves fresh stores after the damage
    key2, result2 = _store_one_entry(tier, tol=1e-3)
    got = tier.lookup(key2, 1e-3)
    assert got is not None and got[0] == 1e-3


def test_disk_tier_verify_reports_damage(tmp_path):
    tier = DiskCacheTier(tmp_path / "spill")
    _store_one_entry(tier)
    ChaosDriver(seed=0).corrupt_cache(tier, kind="garbage", count=1)
    problems = tier.verify()
    assert len(problems) == 1
    assert problems[0].reason == "checksum"
    assert tier.entry_count() == 0


def test_unserializable_result_degrades_to_memory_only(tmp_path):
    class SummaryOnly:
        converged = True
    tier = DiskCacheTier(tmp_path / "spill")
    stored = tier.store(("fp", "lu", "cfg"), 1e-2, SummaryOnly(), {})
    assert stored is False
    assert tier.spill_skipped == 1
    assert tier.entry_count() == 0  # no half-written entry either


def test_corrupted_spill_end_to_end_recompute(tmp_path):
    """Service path: corrupt the spill between restarts; the restarted
    service quarantines it and recomputes instead of failing."""
    cache_dir = tmp_path / "spill"
    with ServiceClient(workers=1, cache_dir=str(cache_dir)) as client:
        client.solve(lu_request())

    tier = DiskCacheTier(cache_dir)
    ChaosDriver(seed=1).corrupt_cache(tier, kind="truncate", count=1)

    with ServiceClient(workers=1, cache_dir=str(cache_dir)) as client:
        resp = client.solve(lu_request())
        assert resp["state"] == "done"
        assert resp["cache"] == "miss"  # recomputed, not served from rot
        assert client.metrics()["cache"]["disk"]["corrupt"] == 1


# ---------------------------------------------------------------------------
# Supervision: worker kills, bounded requeues
# ---------------------------------------------------------------------------

def test_worker_kill_requeues_and_completes():
    service = SolveService(workers=1, supervisor_interval=0.02)
    A = M4.load()
    real = make_solver("lu", SolverConfig(k=16, tol=1e-2)).solve(A)
    calls = []

    def fake_execute(lead, A_, timeout):
        calls.append(1)
        if len(calls) == 1:
            time.sleep(0.6)  # slow first attempt: killable mid-flight
        return real
    service._execute = fake_execute

    driver = ChaosDriver(seed=0)
    with ServiceClient(service=service) as client:
        jid = client.submit(lu_request())
        time.sleep(0.15)  # let worker 0 pick the job up
        assert driver.apply(WorkerKill(worker=0), client=client)
        resp = client.wait(jid, timeout=30)
        assert resp["state"] == "done"
        counters = client.metrics()["counters"]
        assert counters["worker_restarts"] >= 1
        assert counters["requeued"] == 1
        assert counters["failed"] == 0
    assert len(calls) == 2  # original attempt + post-requeue attempt
    assert driver.report.worker_kills == 1


def test_requeue_is_idempotent_and_bounded():
    async def scenario():
        svc = SolveService(workers=1, supervise=False, max_requeues=1)
        job = JobRecord(job_id="j1", request=lu_request())
        svc.jobs[job.job_id] = job

        svc._requeue(job)  # crash 1: within budget, back on the queue
        assert svc.queue.depth == 1
        assert job.state is JobState.PENDING
        assert svc.metrics.counters["requeued"] == 1

        svc._requeue(job)  # crash 2: budget exhausted → typed failure
        assert job.state is JobState.FAILED
        assert job.error_type == "WorkerCrashError"
        assert job.done.is_set()

        depth = svc.queue.depth
        svc._requeue(job)  # already terminal: a strict no-op
        assert svc.queue.depth == depth
        assert job.error_type == "WorkerCrashError"

        done = JobRecord(job_id="j2", request=lu_request())
        done.finish(JobState.DONE)
        svc._requeue(done)  # completed despite the crash: never re-run
        assert svc.queue.depth == depth
        assert done.state is JobState.DONE
    asyncio.run(scenario())


def test_requeue_bypasses_queue_capacity():
    async def scenario():
        svc = SolveService(workers=1, supervise=False, queue_limit=1)
        await svc.submit(lu_request())  # queue now at capacity
        crashed = JobRecord(job_id="jX", request=lu_request())
        svc.jobs[crashed.job_id] = crashed
        # an admitted job must survive its worker's crash even when the
        # queue refilled meanwhile — force-requeue over the bound
        svc._requeue(crashed)
        assert svc.queue.depth == 2
        assert crashed.state is JobState.PENDING
    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Overload shedding + circuit breaker
# ---------------------------------------------------------------------------

def test_overload_sheds_typed_with_retry_after():
    async def scenario():
        async with SolveService(workers=1, queue_limit=1,
                                batching=False) as svc:
            orig = svc._execute
            svc._execute = lambda lead, A, t: (time.sleep(0.3),
                                               orig(lead, A, t))[1]
            first = await svc.submit(lu_request())
            await asyncio.sleep(0.1)   # worker dequeues the first job
            second = await svc.submit(lu_request(tol=5e-2))
            with pytest.raises(ServiceOverloadError) as ei:
                await svc.submit(lu_request(tol=1e-1))
            assert isinstance(ei.value, QueueFullError)  # typed subclass
            assert ei.value.retry_after > 0
            assert ei.value.limit == 1
            # every *accepted* job still completes — shedding loses nothing
            r1 = await svc.wait(first, timeout=60)
            r2 = await svc.wait(second, timeout=60)
            assert r1["state"] == "done" and r2["state"] == "done"
            counters = svc.metrics_snapshot()["counters"]
            assert counters["shed"] == 1 and counters["rejected"] == 1
    asyncio.run(scenario())


def test_circuit_breaker_unit_transitions():
    br = CircuitBreaker(threshold=2, cooldown=0.1)
    br.allow("lu")  # closed: admits
    br.record_failure()
    br.allow("lu")  # still below threshold
    br.record_failure()
    with pytest.raises(CircuitOpenError) as ei:
        br.allow("lu")
    assert ei.value.method == "lu"
    assert ei.value.failures == 2
    assert 0 < ei.value.retry_after <= 0.1
    time.sleep(0.12)
    br.allow("lu")  # half-open: the probe is admitted
    br.record_failure()  # probe failed: re-armed for a full cooldown
    with pytest.raises(CircuitOpenError):
        br.allow("lu")
    time.sleep(0.12)
    br.allow("lu")
    br.record_success()  # probe succeeded: breaker closes
    br.allow("lu")


def test_breaker_opens_on_execution_failures_and_recovers():
    async def scenario():
        async with SolveService(workers=1, breaker_threshold=2,
                                breaker_cooldown=0.2,
                                max_retries=0) as svc:
            # resume_from with no checkpoint fails inside execution, so
            # it counts against the method's breaker
            for _ in range(2):
                resp = await svc.solve(lu_request(resume_from="job-404"),
                                       timeout=60)
                assert resp["state"] == "failed"
            with pytest.raises(CircuitOpenError) as ei:
                await svc.submit(lu_request())
            assert ei.value.failures == 2
            assert svc.metrics_snapshot()["counters"]["breaker_open"] == 1

            await asyncio.sleep(0.25)  # cooldown over: half-open probe
            resp = await svc.solve(lu_request(), timeout=60)
            assert resp["state"] == "done"
            # success closed the breaker: submissions flow freely again
            resp = await svc.solve(lu_request(tol=1e-1), timeout=60)
            assert resp["state"] == "done"
    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# TCP: typed errors over the wire, reconnect after a sever
# ---------------------------------------------------------------------------

def test_breaker_error_crosses_the_wire():
    thread, port = _tcp_server(workers=1, breaker_threshold=1,
                               breaker_cooldown=60.0, max_retries=0)
    client = ServiceClient.connect("127.0.0.1", port)
    try:
        resp = client.solve(lu_request(resume_from="job-404").to_dict())
        assert resp["state"] == "failed"
        with pytest.raises(CircuitOpenError) as ei:
            client.submit(lu_request().to_dict())
        assert ei.value.failures == 1
        assert ei.value.method == resp["method"]
        assert ei.value.retry_after > 0
    finally:
        client.close()
    thread.join(timeout=30)


def test_client_survives_connection_sever():
    thread, port = _tcp_server(workers=1)
    client = ServiceClient.connect(
        "127.0.0.1", port, reconnect_retries=3, reconnect_backoff=0.02)
    driver = ChaosDriver(seed=0)
    try:
        first = client.solve(lu_request().to_dict())
        assert first["state"] == "done"
        driver.apply(ConnectionSever(at_request=1), client=client)
        # resend is idempotent: the content-addressed cache serves it
        again = client.solve(lu_request().to_dict())
        assert again["state"] == "done"
        assert again["cache"] in ("hit", "dominated")
        assert client.reconnects >= 1
        assert driver.report.connection_severs == 1
    finally:
        client.close()
    thread.join(timeout=30)


def test_sever_with_no_reconnect_budget_fails_typed():
    thread, port = _tcp_server(workers=1)
    client = ServiceClient.connect("127.0.0.1", port, reconnect_retries=0)
    closer = None
    try:
        client.solve(lu_request().to_dict())
        ChaosDriver(seed=0).sever_connection(client)
        with pytest.raises(ServiceError):
            client.solve(lu_request().to_dict())
        assert client.reconnects == 0
    finally:
        # the severed socket cannot carry the shutdown op; reopen
        closer = ServiceClient.connect("127.0.0.1", port)
        closer.close()
    thread.join(timeout=30)


# ---------------------------------------------------------------------------
# Satellite (d): eviction racing deadline expiry
# ---------------------------------------------------------------------------

def test_eviction_race_resolves_once_with_one_typed_error():
    matrix = MatrixSpec(suite="M2", scale=0.5)

    def slow_req(**kw):
        return SolveRequest(matrix=matrix, method="lu",
                            config=SolverConfig(k=8, tol=1e-3), **kw)

    # cache_capacity=1 keeps the LRU churning while the deadline fires;
    # a long hang_grace pins the outcome to the *cooperative* eviction
    # path so exactly one completion route can win
    with ServiceClient(workers=2, cache_capacity=1,
                       supervisor_interval=0.01, hang_grace=30.0) as client:
        jid = client.submit(slow_req(timeout=0.05))
        churn = [client.submit(lu_request(tol=t)) for t in (1e-1, 5e-2)]

        resp = client.wait(jid, timeout=60)
        assert resp["state"] == "evicted"
        assert resp["error_type"] == "JobTimeoutError"
        assert resp["resumable"] is True
        # no hang and no double completion: a second wait returns the
        # same terminal response immediately
        resp2 = client.wait(jid, timeout=1)
        assert resp2 == resp
        for cj in churn:
            assert client.wait(cj, timeout=60)["state"] == "done"

        counters = client.metrics()["counters"]
        assert counters["evicted"] == 1      # exactly one typed eviction
        assert counters["hung_failed"] == 0  # the hung path never fired
        assert counters["failed"] == 0

        # the checkpoint survived the race: the job resumes to done
        resumed = client.solve(slow_req(resume_from=jid))
        assert resumed["state"] == "done"
