"""Integration tests: cross-method agreement and headline paper claims.

These run all four fixed-precision methods on the same matrices with the
same uniform termination criteria (the paper's methodological core) and
assert the qualitative results of Section VI at test scale.
"""

import pytest

from repro import ilut_crtp, lu_crtp, randqb_ei, randubv
from repro.matrices.generators import circuit_network, random_graded
from repro.matrices.suite import suite_matrix


@pytest.fixture(scope="module")
def fill_heavy():
    """M2-like: scattered pattern, exponential decay, heavy fill."""
    return random_graded(200, 200, nnz_per_row=10, decay_rate=8.0, seed=77)


@pytest.fixture(scope="module")
def low_fill():
    """M4-like: hub-dominated circuit, low fill, huge leading gap."""
    return circuit_network(250, avg_degree=4.0, hubs=20, hub_scale=200.0,
                           seed=78)


def run_all(A, k=8, tol=1e-2):
    lu = lu_crtp(A, k=k, tol=tol)
    return {
        "randqb": randqb_ei(A, k=k, tol=tol, power=1),
        "ubv": randubv(A, k=k, tol=tol),
        "lu": lu,
        "ilut": ilut_crtp(A, k=k, tol=tol,
                          estimated_iterations=max(lu.iterations, 1)),
    }


def test_all_methods_reach_tolerance(fill_heavy):
    res = run_all(fill_heavy)
    for name, r in res.items():
        assert r.converged, name
        assert r.error(fill_heavy) < 1e-2, name


def test_uniform_termination_ranks_comparable(fill_heavy):
    """With uniform criteria, achieved ranks agree within ~2 blocks (the
    Table II its columns track each other)."""
    res = run_all(fill_heavy)
    ranks = {n: r.rank for n, r in res.items()}
    rmin, rmax = min(ranks.values()), max(ranks.values())
    assert rmax - rmin <= 4 * 8, ranks


def test_ilut_reduces_nnz_under_fill(fill_heavy):
    res = run_all(fill_heavy)
    assert res["ilut"].factor_nnz() < res["lu"].factor_nnz()


def test_low_fill_circuit_cheap_for_deterministic(low_fill):
    """M4 regime: tau=0.1 within very few iterations for every method, LU
    Schur complements stay sparse."""
    res = run_all(low_fill, k=32, tol=1e-1)
    assert res["lu"].iterations <= 3
    assert res["randqb"].iterations <= 3
    max_density = max(r.schur_density for r in res["lu"].history)
    assert max_density < 0.3


def test_fillin_progression_monotone_regimes(fill_heavy, low_fill):
    """Fig. 1 right: fill-heavy matrices densify across iterations; the
    circuit analogue does not."""
    lu_heavy = lu_crtp(fill_heavy, k=8, tol=1e-2)
    lu_light = lu_crtp(low_fill, k=32, tol=1e-1)
    assert max(r.schur_density for r in lu_heavy.history) > \
        3 * max(r.schur_density for r in lu_light.history)


def test_indicator_exactness_all_methods(fill_heavy):
    res = run_all(fill_heavy)
    for name in ("randqb", "ubv", "lu"):
        r = res[name]
        assert r.error(fill_heavy) == pytest.approx(
            r.relative_indicator(), rel=1e-3), name
    # ILUT's estimator (26) only estimates; gap bounded by ||T||
    il = res["ilut"]
    gap = abs(il.error(fill_heavy) - il.relative_indicator()) * il.a_fro
    assert gap <= il.dropped_norm_bound() + 1e-9


def test_suite_m2_analogue_ilut_speedup():
    """Table II M2 rows: ILUT_CRTP much cheaper than LU_CRTP when fill-in is
    heavy; nnz ratio well above 1."""
    A = suite_matrix("M2", scale=0.35)
    lu = lu_crtp(A, k=16, tol=1e-2)
    il = ilut_crtp(A, k=16, tol=1e-2,
                   estimated_iterations=max(lu.iterations, 1))
    assert il.converged
    ratio = lu.factor_nnz() / il.factor_nnz()
    assert ratio > 1.5
    # thresholding pays for itself; 1.2x slack absorbs wall-clock noise
    # when the suite runs under load (the work reduction itself is asserted
    # through the nnz ratio above and the Schur-flop trace below)
    assert il.elapsed < lu.elapsed * 1.2
    lu_flops = sum(r.extra["trace"]["schur_flops"] for r in lu.history)
    il_flops = sum(r.extra["trace"]["schur_flops"] for r in il.history)
    assert il_flops < lu_flops


def test_randqb_power_tradeoff(fill_heavy):
    """Table II: p=1 needs fewer iterations than p=0; p=2 costs more time
    per iteration (the runtime trade-off the paper reports)."""
    r0 = randqb_ei(fill_heavy, k=8, tol=1e-2, power=0)
    r1 = randqb_ei(fill_heavy, k=8, tol=1e-2, power=1)
    assert r1.iterations <= r0.iterations
    t0 = r0.elapsed / r0.iterations
    t2 = randqb_ei(fill_heavy, k=8, tol=1e-2, power=2).elapsed
    # p=2 per-iteration cost exceeds p=0 per-iteration cost
    r2 = randqb_ei(fill_heavy, k=8, tol=1e-2, power=2)
    assert r2.elapsed / r2.iterations > t0


def test_loss_of_orthogonality_stays_small(fill_heavy):
    """§VI-B: ||Q^T Q - I||_inf in 1e-15..1e-13 range over the iterations."""
    res = randqb_ei(fill_heavy, k=8, tol=1e-2)
    assert res.orthogonality_defect() < 1e-12


def test_ubv_fewer_iterations_than_p0(fill_heavy):
    qb0 = randqb_ei(fill_heavy, k=8, tol=1e-2, power=0)
    ubv = randubv(fill_heavy, k=8, tol=1e-2)
    assert ubv.iterations <= qb0.iterations
