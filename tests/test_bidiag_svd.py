"""Tests for repro.linalg.bidiag_svd (one-sided Jacobi SVD)."""

import numpy as np
import pytest

from repro.linalg.bidiag_svd import bidiagonal_svd, jacobi_svd, svd_any


def check_svd(A, U, s, Vt, atol=1e-9):
    n = len(s)
    np.testing.assert_allclose((U * s) @ Vt, A, atol=atol)
    np.testing.assert_allclose(U.T @ U, np.eye(n), atol=1e-9)
    np.testing.assert_allclose(Vt @ Vt.T, np.eye(Vt.shape[0]), atol=1e-9)
    assert np.all(np.diff(s) <= 1e-12)
    assert np.all(s >= 0)


def test_jacobi_matches_lapack(rng):
    A = rng.standard_normal((20, 12))
    U, s, Vt = jacobi_svd(A)
    s_ref = np.linalg.svd(A, compute_uv=False)
    np.testing.assert_allclose(s, s_ref, rtol=1e-10)
    check_svd(A, U, s, Vt)


def test_jacobi_graded_spectrum(rng):
    Uq, _ = np.linalg.qr(rng.standard_normal((30, 10)))
    Vq, _ = np.linalg.qr(rng.standard_normal((10, 10)))
    sd = np.logspace(0, -10, 10)
    A = Uq @ np.diag(sd) @ Vq.T
    _, s, _ = jacobi_svd(A)
    np.testing.assert_allclose(s, sd, rtol=1e-6)


def test_jacobi_rank_deficient(rng):
    A = rng.standard_normal((15, 3)) @ rng.standard_normal((3, 8))
    U, s, Vt = jacobi_svd(A)
    assert np.all(s[3:] < 1e-10 * s[0])
    check_svd(A, U, s, Vt)


def test_jacobi_zero_matrix():
    U, s, Vt = jacobi_svd(np.zeros((6, 4)))
    assert np.allclose(s, 0)
    np.testing.assert_allclose(U.T @ U, np.eye(4), atol=1e-12)


def test_jacobi_identity():
    U, s, Vt = jacobi_svd(np.eye(5))
    np.testing.assert_allclose(s, np.ones(5))


def test_jacobi_requires_tall(rng):
    with pytest.raises(ValueError):
        jacobi_svd(rng.standard_normal((3, 7)))


def test_jacobi_values_only(rng):
    A = rng.standard_normal((10, 6))
    _, s, _ = jacobi_svd(A, compute_uv=False)
    np.testing.assert_allclose(s, np.linalg.svd(A, compute_uv=False),
                               rtol=1e-10)


def test_svd_any_wide(rng):
    A = rng.standard_normal((5, 12))
    U, s, Vt = svd_any(A)
    np.testing.assert_allclose((U * s) @ Vt, A, atol=1e-9)
    np.testing.assert_allclose(s, np.linalg.svd(A, compute_uv=False),
                               rtol=1e-10)


def test_bidiagonal_svd(rng):
    d = rng.standard_normal(9)
    e = rng.standard_normal(8)
    U, s, Vt = bidiagonal_svd(d, e)
    B = np.diag(d) + np.diag(e, 1)
    np.testing.assert_allclose(s, np.linalg.svd(B, compute_uv=False),
                               rtol=1e-9)
    check_svd(B, U, s, Vt)


def test_bidiagonal_graded():
    d = np.logspace(0, -8, 12)
    e = 0.5 * np.logspace(0, -8, 11)
    _, s, _ = bidiagonal_svd(d, e, compute_uv=False)
    B = np.diag(d) + np.diag(e, 1)
    np.testing.assert_allclose(s, np.linalg.svd(B, compute_uv=False),
                               rtol=1e-7)


def test_bidiagonal_validates_lengths():
    with pytest.raises(ValueError):
        bidiagonal_svd(np.ones(4), np.ones(4))


def test_bidiagonal_empty():
    _, s, _ = bidiagonal_svd(np.zeros(0), np.zeros(0))
    assert s.size == 0
