"""Tests for the process-per-rank SPMD backend (repro.parallel.procs).

The contract under test: ``run_spmd(..., backend="procs")`` is a drop-in
for the thread backend — bitwise-identical results, modeled clocks,
kernel attribution and comm ledgers — while actually running one OS
process per rank with the matrix shared via ``multiprocessing.
shared_memory``.  Also covered: the tree/ring collective algorithms,
cross-backend checkpointing, fault parity, shared-memory hygiene, and
the two satellite fixes (sparse ``_payload_bytes``, loud join timeout).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import (
    CommTimeoutError,
    CommunicatorError,
    RankFailure,
)
from repro.parallel.comm import _payload_bytes, run_spmd
from repro.parallel.faults import FaultPlan, RankCrash
from repro.parallel.machine import MachineModel
from repro.parallel.report import CommReport, comm_volume_table
from repro.parallel.shm import shm_segments
from repro.parallel.spmd import spmd_lu_crtp, spmd_randqb_ei


@pytest.fixture
def A120():
    from repro.matrices.generators import random_graded
    return random_graded(120, 120, nnz_per_row=7, decay_rate=7.0, seed=21)


def _assert_clocks_equal(a, b):
    assert [float(x) for x in a] == [float(x) for x in b]


def _assert_results_bitwise(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert len(ra) == len(rb)
        for xa, xb in zip(ra, rb):
            if isinstance(xa, np.ndarray):
                assert np.array_equal(xa, xb)
            else:
                assert xa == xb


# ---------------------------------------------------------------------------
# Backend parity: procs vs threads must agree bitwise
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("nprocs", [1, 4])
def test_procs_matches_threads_randqb(A120, nprocs):
    thr = run_spmd(nprocs, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0)
    prc = run_spmd(nprocs, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0,
                   backend="procs")
    assert thr["backend"] == "threads" and prc["backend"] == "procs"
    _assert_results_bitwise(thr["results"], prc["results"])
    _assert_clocks_equal(thr["clocks"], prc["clocks"])
    assert thr["elapsed"] == prc["elapsed"]
    assert thr["kernel_seconds"] == prc["kernel_seconds"]


def test_procs_matches_threads_lu(A120):
    thr = run_spmd(4, spmd_lu_crtp, A120, k=8, tol=1e-2)
    prc = run_spmd(4, spmd_lu_crtp, A120, k=8, tol=1e-2, backend="procs")
    _assert_results_bitwise(thr["results"], prc["results"])
    _assert_clocks_equal(thr["clocks"], prc["clocks"])
    K, conv, rel = prc["results"][0]
    assert conv and rel < 1e-2


def test_procs_ledger_matches_threads(A120):
    thr = run_spmd(3, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0)
    prc = run_spmd(3, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0,
                   backend="procs")
    ct, cp = thr["comm"], prc["comm"]
    assert ct["bytes_sent"] == cp["bytes_sent"]
    assert ct["msgs"] == cp["msgs"]
    assert ct["by_op"] == cp["by_op"]
    assert ct["by_kernel"] == cp["by_kernel"]
    assert cp["bytes_sent"] > 0 and cp["msgs"] > 0


def test_procs_custom_program_p2p_and_collectives(A120):
    def prog(comm, base):
        comm.kernel("mix")
        x = comm.bcast(np.full(4, base + comm.rank), root=1)
        if comm.nprocs > 1:
            if comm.rank == 0:
                comm.send(np.arange(3.0), dst=1, tag=7)
            elif comm.rank == 1:
                x = x + comm.recv(src=0, tag=7)[:3].sum()
        parts = comm.allgather(float(comm.rank))
        s = comm.allreduce_sum(np.full(5, comm.rank, dtype=float))
        g = comm.gather(comm.rank * 2, root=0)
        sc = comm.scatter([i * 10 for i in range(comm.nprocs)]
                          if comm.rank == 0 else None, root=0)
        comm.barrier_sync()
        return (x.tolist(), parts, s.tolist(), g, sc, comm.clock())

    thr = run_spmd(4, prog, 5.0)
    prc = run_spmd(4, prog, 5.0, backend="procs")
    assert thr["results"] == prc["results"]
    _assert_clocks_equal(thr["clocks"], prc["clocks"])
    assert thr["comm"]["by_op"] == prc["comm"]["by_op"]


# ---------------------------------------------------------------------------
# Collective algorithms: tree/ring transport, flat-identical model
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("nprocs", [2, 4, 5])
def test_tree_algo_identical_model_clocks(A120, nprocs):
    flat = run_spmd(nprocs, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0,
                    backend="procs")
    tree = run_spmd(nprocs, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0,
                    backend="procs", machine=MachineModel(comm_algo="tree"))
    # ring allreduce reorders floating-point sums, so results are close
    # (not bitwise); the alpha-beta-gamma cost model is transport-
    # independent by design, so modeled clocks stay bitwise identical
    for rf, rt in zip(flat["results"], tree["results"]):
        for xf, xt in zip(rf, rt):
            if isinstance(xf, np.ndarray):
                np.testing.assert_allclose(xt, xf, rtol=1e-9, atol=1e-12)
            else:
                assert xf == xt
    _assert_clocks_equal(flat["clocks"], tree["clocks"])
    assert tree["comm"]["algo"] == "tree"


def test_machine_model_rejects_unknown_algo():
    with pytest.raises(ValueError, match="comm_algo"):
        MachineModel(comm_algo="hypercube")


def test_comm_report_renders(A120):
    out = run_spmd(2, spmd_randqb_ei, A120, k=8, tol=1e-1, seed=0,
                   backend="procs")
    rep = CommReport.from_run(out)
    txt = rep.table()
    assert "backend=procs" in txt and "total" in txt
    txt_k = rep.table(by="kernel")
    assert "kernel" in txt_k
    with pytest.raises(ValueError):
        rep.table(by="rank")
    # the legacy free function survives as a once-warning shim
    import warnings

    import repro.parallel.report as report_mod
    report_mod._warned_comm_volume_table = False
    with pytest.warns(DeprecationWarning, match="comm_volume_table"):
        legacy = comm_volume_table(out["comm"])
    assert legacy == txt
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # the shim warns only once
        assert comm_volume_table(out["comm"]) == txt


# ---------------------------------------------------------------------------
# Checkpoints across backends
# ---------------------------------------------------------------------------

def test_checkpoint_procs_write_threads_resume(A120, tmp_path):
    base = run_spmd(4, spmd_lu_crtp, A120, k=8, tol=1e-2)
    K0, conv0, rel0 = base["results"][0]

    ckpt = tmp_path / "lu_procs.ckpt.npz"
    plan = FaultPlan([RankCrash(rank=1, superstep=60)])
    with pytest.raises(RankFailure) as ei:
        run_spmd(4, spmd_lu_crtp, A120, k=8, tol=1e-2, backend="procs",
                 checkpoint_path=str(ckpt), fault_plan=plan,
                 recv_timeout=5.0, collective_timeout=20.0)
    assert ei.value.rank == 1
    assert ckpt.exists()

    out = run_spmd(4, spmd_lu_crtp, A120, k=8, tol=1e-2,
                   resume_from=str(ckpt))  # thread backend resumes it
    assert out["results"][0] == (K0, conv0, rel0)


def test_checkpoint_callback_rejected_on_procs(A120):
    with pytest.raises(CommunicatorError, match="checkpoint_callback"):
        run_spmd(2, spmd_randqb_ei, A120, k=8, tol=1e-1, seed=0,
                 backend="procs", checkpoint_callback=[].append)


# ---------------------------------------------------------------------------
# Faults and failure reporting
# ---------------------------------------------------------------------------

def test_procs_injected_crash_matches_threads(A120):
    def crash_plan():
        return FaultPlan([RankCrash(rank=1, superstep=5)])

    with pytest.raises(RankFailure) as et:
        run_spmd(4, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0,
                 fault_plan=crash_plan(), recv_timeout=5.0,
                 collective_timeout=20.0)
    with pytest.raises(RankFailure) as ep:
        run_spmd(4, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0,
                 backend="procs", fault_plan=crash_plan(),
                 recv_timeout=5.0, collective_timeout=20.0)
    assert (et.value.rank, et.value.superstep) == \
        (ep.value.rank, ep.value.superstep) == (1, 5)
    assert ep.value.injected


def test_procs_program_error_propagates(A120):
    def bad(comm):
        comm.barrier_sync()
        if comm.rank == 2:
            raise ZeroDivisionError("rank 2 exploded")
        comm.barrier_sync()
        return comm.rank

    with pytest.raises(Exception, match="rank 2 exploded"):
        run_spmd(4, bad, backend="procs", recv_timeout=5.0,
                 collective_timeout=20.0)


# ---------------------------------------------------------------------------
# Shared-memory hygiene: no leaked /dev/shm segments, ever
# ---------------------------------------------------------------------------

def test_no_shm_leak_after_normal_run(A120):
    run_spmd(4, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0,
             backend="procs")
    assert shm_segments() == []


def test_no_shm_leak_after_fault(A120):
    plan = FaultPlan([RankCrash(rank=0, superstep=3)])
    with pytest.raises(RankFailure):
        run_spmd(4, spmd_randqb_ei, A120, k=8, tol=1e-2, seed=0,
                 backend="procs", fault_plan=plan, recv_timeout=5.0,
                 collective_timeout=20.0)
    assert shm_segments() == []


def test_no_shm_leak_after_program_error(A120):
    def bad(comm):
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError):
        run_spmd(3, bad, backend="procs", recv_timeout=5.0,
                 collective_timeout=20.0)
    assert shm_segments() == []


# ---------------------------------------------------------------------------
# Satellite fixes
# ---------------------------------------------------------------------------

def test_payload_bytes_sparse_counts_index_arrays():
    A = sp.random(60, 40, density=0.1, format="csr", random_state=0)
    expected = (A.data.nbytes + A.indices.nbytes + A.indptr.nbytes)
    assert _payload_bytes(A) == expected
    # and it is no longer the old flat nnz*16 charge
    assert _payload_bytes(A) != A.nnz * 16
    C = A.tocoo()
    assert _payload_bytes(C) == C.data.nbytes + C.row.nbytes + C.col.nbytes


def test_thread_join_timeout_names_stuck_ranks():
    def stuck(comm):
        comm.barrier_sync()
        if comm.rank == 1:
            # waits on a message nobody sends; recv_timeout outlives the
            # parent's join deadline so the rank is still alive then
            comm.recv(src=0, tag=99)
        return comm.rank

    with pytest.raises(CommTimeoutError, match=r"rank 1") as ei:
        run_spmd(2, stuck, recv_timeout=6.0, collective_timeout=6.0,
                 join_timeout=1.0)
    assert "failed to join" in str(ei.value)


def test_backend_validated():
    with pytest.raises(CommunicatorError, match="backend"):
        run_spmd(2, lambda comm: comm.rank, backend="mpi")
