"""Tests for repro.sparse.pattern and repro.sparse.fillin."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.fillin import FillInTracker
from repro.sparse.pattern import (
    ata_pattern_degrees,
    boolean_pattern,
    column_counts,
    rows_of_columns,
)


def test_boolean_pattern():
    A = sp.csc_matrix(np.array([[1.5, 0.0], [-2.0, 3.0]]))
    P = boolean_pattern(A)
    np.testing.assert_array_equal(P.toarray(), [[1, 0], [1, 1]])


def test_ata_degrees_matches_explicit(small_sparse):
    deg = ata_pattern_degrees(small_sparse)
    G = (small_sparse.T @ small_sparse).toarray() != 0
    np.fill_diagonal(G, False)
    np.testing.assert_array_equal(deg, G.sum(axis=1))


def test_column_counts(small_sparse):
    cc = column_counts(small_sparse)
    np.testing.assert_array_equal(
        cc, (small_sparse.toarray() != 0).sum(axis=0))


def test_rows_of_columns():
    A = sp.csc_matrix(np.array([[1.0, 0.0], [1.0, 2.0], [0.0, 3.0]]))
    rows = rows_of_columns(A)
    np.testing.assert_array_equal(rows[0], [0, 1])
    np.testing.assert_array_equal(rows[1], [1, 2])


def test_fillin_tracker_sequence():
    t = FillInTracker.for_matrix(sp.identity(10, format="csc"))
    assert t.initial_nnz == 10
    denser = sp.csc_matrix(np.ones((8, 8)))
    t.observe(denser)
    assert t.max_density == 1.0
    assert t.max_nnz_ratio == pytest.approx(6.4)
    assert len(t.growth_factors) == 1
    assert t.growth_factors[0] == pytest.approx(6.4)


def test_fillin_tracker_summary():
    t = FillInTracker.for_matrix(sp.identity(4, format="csc"))
    s = t.summary()
    assert s["iterations"] == 1
    assert s["max_density"] == pytest.approx(0.25)
    assert s["final_nnz"] == 4


def test_fillin_tracker_empty():
    t = FillInTracker()
    assert t.max_density == 0.0
    assert t.max_nnz_ratio == 0.0
    assert t.summary()["final_nnz"] == 0
