"""Tests for repro.pivoting.tournament (QR_TP)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.pivoting.tournament import qr_tp, qr_tp_rows


def graded_sparse(rng, m=80, n=64, cond=1e6):
    from repro.matrices.generators import random_graded
    return random_graded(m, n, nnz_per_row=6, decay_rate=np.log(cond), seed=9)


def test_perm_is_permutation(small_sparse):
    res = qr_tp(small_sparse, 8)
    assert sorted(res.perm.tolist()) == list(range(60))
    np.testing.assert_array_equal(res.perm[:8], res.winners)


def test_single_leaf_case(rng):
    A = sp.csc_matrix(rng.standard_normal((20, 10)))
    res = qr_tp(A, 8)  # leaf_cols = 16 >= 10: single match
    assert res.winners.size == 8
    assert len(res.stats.leaf_matches) == 1
    assert res.stats.rounds == 0


@pytest.mark.parametrize("tree", ["binary", "flat"])
def test_tournament_selects_quality_columns(rng, tree):
    """Tournament winners span the dominant subspace within the RRQR factor."""
    A = graded_sparse(rng)
    k = 8
    res = qr_tp(A, k, tree=tree)
    D = A.toarray()
    C = D[:, res.winners]
    Q, _ = np.linalg.qr(C)
    resid = np.linalg.norm(D - Q @ (Q.T @ D), 2)
    s = np.linalg.svd(D, compute_uv=False)
    assert resid <= 50 * s[k]


def test_binary_and_flat_similar_quality(rng):
    A = graded_sparse(rng)
    k = 6
    D = A.toarray()
    s = np.linalg.svd(D, compute_uv=False)

    def resid(winners):
        Q, _ = np.linalg.qr(D[:, winners])
        return np.linalg.norm(D - Q @ (Q.T @ D), 2)

    rb = resid(qr_tp(A, k, tree="binary").winners)
    rf = resid(qr_tp(A, k, tree="flat").winners)
    assert rb <= 50 * s[k] and rf <= 50 * s[k]


def test_dominant_column_always_wins(rng):
    A = rng.standard_normal((30, 40))
    A[:, 17] *= 1e4
    res = qr_tp(sp.csc_matrix(A), 4)
    assert 17 in set(res.winners.tolist())


def test_stats_stage_structure(rng):
    A = graded_sparse(rng, n=64)
    res = qr_tp(A, 4, leaf_cols=8, tree="binary")  # 8 leaves -> 3 rounds
    assert len(res.stats.leaf_matches) == 8
    assert res.stats.rounds == 3
    assert res.stats.total_flops > 0
    assert res.stats.stage_flops("leaf") > 0


def test_flat_tree_rounds(rng):
    A = graded_sparse(rng, n=64)
    res = qr_tp(A, 4, leaf_cols=8, tree="flat")  # 8 leaves -> 7 acc matches
    assert res.stats.rounds == 7


def test_r11_diag_nonempty(small_sparse):
    res = qr_tp(small_sparse, 8)
    assert res.r11_diag.size >= 8
    assert res.r11_diag[0] > 0


def test_invalid_args(small_sparse):
    with pytest.raises(ValueError):
        qr_tp(small_sparse, 0)
    with pytest.raises(ValueError):
        qr_tp(small_sparse, 4, tree="ternary")


def test_k_exceeding_columns(rng):
    A = sp.csc_matrix(rng.standard_normal((10, 5)))
    res = qr_tp(A, 9)
    assert res.winners.size == 5


def test_row_tournament_selects_dominant_rows(rng):
    Q = rng.standard_normal((50, 6))
    Q[13] *= 1e4
    res = qr_tp_rows(Q, 3)
    assert 13 in set(res.winners.tolist())
    assert sorted(res.perm.tolist()) == list(range(50))


def test_row_tournament_well_conditioned_pick(rng):
    """Selected rows of an orthonormal Q give a well-conditioned Q11 —
    the property LU_CRTP needs (Qbar11 invertible)."""
    from repro.linalg.orth import orth
    Q = orth(rng.standard_normal((100, 8)))
    res = qr_tp_rows(Q, 8)
    Q11 = Q[res.winners]
    assert np.linalg.cond(Q11) < 1e3
