"""Tests for repro.matrices.suitesparse (real-matrix loader)."""

import pytest

from repro.matrices.mmio import write_matrix_market
from repro.matrices.suitesparse import (
    available_real_matrices,
    load_paper_matrix,
    paper_matrix_path,
)


def test_fallback_to_analogue(monkeypatch):
    monkeypatch.delenv("REPRO_SUITESPARSE_DIR", raising=False)
    A = load_paper_matrix("M3", scale=0.25)
    assert A.shape[0] > 0  # analogue came back


def test_no_fallback_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_paper_matrix("M1", root=tmp_path, fallback=False)


def test_loads_real_file_when_present(tmp_path):
    from repro.matrices.generators import random_graded
    real = random_graded(30, 30, nnz_per_row=4, seed=1)
    write_matrix_market(real, tmp_path / "raefsky3.mtx")
    A = load_paper_matrix("M2", root=tmp_path)
    assert A.shape == (30, 30)
    assert (A != real).nnz == 0


def test_env_var_root(tmp_path, monkeypatch):
    from repro.matrices.generators import random_graded
    write_matrix_market(random_graded(20, 20, nnz_per_row=3, seed=2),
                        tmp_path / "bcsstk18.mtx")
    monkeypatch.setenv("REPRO_SUITESPARSE_DIR", str(tmp_path))
    A = load_paper_matrix("M1")
    assert A.shape == (20, 20)
    assert available_real_matrices() == ["M1"]


def test_paper_matrix_path_unknown_label(tmp_path):
    with pytest.raises(KeyError):
        paper_matrix_path("M99", tmp_path)


def test_paper_matrix_path_none_without_root(monkeypatch):
    monkeypatch.delenv("REPRO_SUITESPARSE_DIR", raising=False)
    assert paper_matrix_path("M1") is None
