"""Tests for repro.matrices.generators and repro.matrices.spectra."""

import numpy as np
import pytest

from repro.matrices.generators import (
    circuit_network,
    convection_diffusion,
    economic_flow,
    grid_stiffness,
    kahan_matrix,
    random_graded,
)
from repro.matrices.spectra import (
    effective_rank,
    graded_weights,
    numerical_rank,
    spectrum_summary,
)


def test_grid_stiffness_spd():
    A = grid_stiffness(6, 7, seed=0)
    assert A.shape == (42, 42)
    D = A.toarray()
    np.testing.assert_allclose(D, D.T, atol=1e-12)
    w = np.linalg.eigvalsh(D)
    assert np.all(w > 0)


def test_grid_stiffness_deterministic():
    A = grid_stiffness(5, 5, seed=3)
    B = grid_stiffness(5, 5, seed=3)
    assert (A != B).nnz == 0


def test_convection_diffusion_nonsymmetric():
    A = convection_diffusion(6, 6, peclet=20.0, seed=1)
    D = A.toarray()
    assert not np.allclose(D, D.T)
    assert A.shape == (36, 36)


def test_random_graded_shape_and_nnz():
    A = random_graded(50, 40, nnz_per_row=5, seed=2)
    assert A.shape == (50, 40)
    assert A.nnz <= 250
    assert A.nnz >= 200  # duplicates possible but rare


def test_random_graded_decay_controls_spectrum():
    fast = random_graded(80, 80, nnz_per_row=6, decay_rate=12.0, seed=4)
    slow = random_graded(80, 80, nnz_per_row=6, decay_rate=1.0, seed=4)
    rf = effective_rank(np.linalg.svd(fast.toarray(), compute_uv=False), 1e-2)
    rs = effective_rank(np.linalg.svd(slow.toarray(), compute_uv=False), 1e-2)
    assert rf < rs


def test_circuit_network_hubs_create_gap():
    """Hub scaling concentrates Frobenius mass in few directions (the M4
    one-iteration regime)."""
    hubby = circuit_network(200, hubs=20, hub_scale=300.0, seed=5)
    plain = circuit_network(200, hubs=0, seed=5)
    s_h = np.linalg.svd(hubby.toarray(), compute_uv=False)
    s_p = np.linalg.svd(plain.toarray(), compute_uv=False)
    assert effective_rank(s_h, 1e-1) < effective_rank(s_p, 1e-1)


def test_economic_flow_structure():
    A = economic_flow(120, sectors=6, seed=6)
    assert A.shape == (120, 120)
    assert A.nnz > 0
    # slow algebraic decay: 1e-3 needs a large share of n
    s = np.linalg.svd(A.toarray(), compute_uv=False)
    assert effective_rank(s, 1e-3) > 0.3 * 120


def test_kahan_matrix_is_rrqr_adversary():
    K = kahan_matrix(30, theta=1.2)
    D = K.toarray()
    assert np.allclose(D, np.triu(D))
    s = np.linalg.svd(D, compute_uv=False)
    # hidden small singular value: far below the smallest diagonal entry
    assert s[-1] < 0.1 * abs(D[-1, -1])


def test_graded_weights_shapes():
    for kind in ("exponential", "algebraic", "step", "flat"):
        w = graded_weights(20, kind, 4.0)
        assert w.shape == (20,)
        assert np.all(np.diff(w) <= 1e-12)
    with pytest.raises(ValueError):
        graded_weights(10, "bogus")


def test_effective_rank_basics():
    s = np.array([10.0, 1.0, 0.1, 0.01])
    assert effective_rank(s, 0.5) == 1
    assert effective_rank(s, 1e-6) == 4
    assert effective_rank(np.zeros(3), 0.1) == 0


def test_effective_rank_is_tight():
    s = np.array([1.0, 0.5, 0.25])
    r = effective_rank(s, 0.6)
    tail = np.sqrt(np.sum(s[r:] ** 2))
    assert tail < 0.6 * np.linalg.norm(s)
    if r > 0:
        tail_prev = np.sqrt(np.sum(s[r - 1:] ** 2))
        assert tail_prev >= 0.6 * np.linalg.norm(s)


def test_numerical_rank():
    s = np.array([1.0, 1e-3, 1e-15])
    assert numerical_rank(s) == 2
    assert numerical_rank(np.zeros(2)) == 0


def test_spectrum_summary_keys():
    s = np.logspace(0, -8, 30)
    d = spectrum_summary(s)
    assert d["sigma_max"] == 1.0
    assert d["numerical_rank"] == 30
    assert d["rank_for_1e-1"] <= d["rank_for_1e-3"]
