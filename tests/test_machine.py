"""Tests for repro.parallel.machine (cost model)."""

import pytest

from repro.parallel.machine import MachineModel


@pytest.fixture
def mm():
    return MachineModel(gamma_flop=1e-9, gamma_mem=1e-10, alpha=1e-6,
                        beta=1e-9)


def test_flops_and_mem(mm):
    assert mm.flops(1e6) == pytest.approx(1e-3)
    assert mm.mem(1e6) == pytest.approx(1e-4)
    assert mm.flops(-5) == 0.0


def test_p2p(mm):
    c = mm.collectives
    assert c.p2p(1000) == pytest.approx(1e-6 + 1e-6)
    assert c.p2p(0) == pytest.approx(1e-6)


def test_bcast_log_scaling(mm):
    c = mm.collectives
    assert c.bcast(100, 1) == 0.0
    t2 = c.bcast(100, 2)
    t8 = c.bcast(100, 8)
    assert t8 == pytest.approx(3 * t2)


def test_allgather_bandwidth_term(mm):
    c = mm.collectives
    # large message: bandwidth dominates, (P-1)/P -> 1
    big = c.allgather(1e9, 1024)
    assert big == pytest.approx(1e9 * 1e-9 * 1023 / 1024, rel=1e-2)
    assert c.allgather(100, 1) == 0.0


def test_allreduce_twice_allgather_bandwidth(mm):
    c = mm.collectives
    ag = c.allgather(1e8, 64)
    ar = c.allreduce(1e8, 64)
    assert ar > ag  # 2x bandwidth + 2x latency


def test_scatter_gather_symmetric(mm):
    c = mm.collectives
    assert c.scatter(1e6, 16) == c.gather(1e6, 16)


def test_non_power_of_two(mm):
    c = mm.collectives
    # ceil(log2(5)) = 3 rounds
    assert c.bcast(0, 5) == pytest.approx(3 * 1e-6)


def test_costs_monotone_in_procs(mm):
    c = mm.collectives
    vals = [c.allreduce(1e4, p) for p in (2, 4, 8, 16, 64)]
    assert all(b >= a for a, b in zip(vals, vals[1:]))


def test_default_model_sane():
    m = MachineModel()
    assert 0 < m.gamma_flop < 1e-8
    assert m.alpha > m.beta  # latency >> per-byte cost


def test_presets():
    eth = MachineModel.ethernet_cluster()
    hpc = MachineModel.hpc_cluster()
    shm = MachineModel.shared_memory()
    assert eth.alpha > hpc.alpha > shm.alpha
    # ethernet saturates collectives much earlier
    c_eth = eth.collectives.allreduce(1e6, 64)
    c_shm = shm.collectives.allreduce(1e6, 64)
    assert c_eth > c_shm
