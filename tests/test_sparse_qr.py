"""Tests for repro.linalg.sparse_qr (left-looking sparse Householder QR)."""

import numpy as np
import scipy.sparse as sp

from repro.linalg.sparse_qr import sparse_householder_qr


def test_reconstruction_sparse(tall_sparse):
    f = sparse_householder_qr(tall_sparse)
    Q = f.explicit_q()
    np.testing.assert_allclose(Q @ f.R, tall_sparse.toarray(), atol=1e-10)
    assert np.linalg.norm(Q.T @ Q - np.eye(Q.shape[1])) < 1e-10
    assert np.allclose(f.R, np.triu(f.R))


def test_matches_dense_qr_r_factor(tall_sparse):
    f = sparse_householder_qr(tall_sparse)
    _, Rd = np.linalg.qr(tall_sparse.toarray())
    np.testing.assert_allclose(np.abs(np.diag(f.R)), np.abs(np.diag(Rd)),
                               rtol=1e-10)


def test_apply_qt_consistent(tall_sparse, rng):
    f = sparse_householder_qr(tall_sparse)
    x = rng.standard_normal(120)
    Q = f.explicit_q()
    np.testing.assert_allclose(f.apply_qt(x)[:Q.shape[1]], Q.T @ x,
                               atol=1e-10)


def test_apply_q_qt_roundtrip(tall_sparse, rng):
    f = sparse_householder_qr(tall_sparse)
    x = rng.standard_normal(120)
    np.testing.assert_allclose(f.apply_q(f.apply_qt(x)), x, atol=1e-10)


def test_block_rhs(tall_sparse, rng):
    f = sparse_householder_qr(tall_sparse)
    X = rng.standard_normal((120, 3))
    Y = f.apply_qt(X)
    assert Y.shape == (120, 3)


def test_reflectors_stay_sparse():
    """On a banded block, the reflector support stays near the band —
    far below the dense m*p count (the whole point of sparse QR)."""
    n = 200
    B = sp.diags([np.ones(n - 1), 2 * np.ones(n), np.ones(n - 1)],
                 [-1, 0, 1]).tocsc()[:, :20]
    f = sparse_householder_qr(B)
    assert f.reflector_nnz < 0.2 * (200 * 20)


def test_wide_block(rng):
    B = sp.csc_matrix(rng.standard_normal((5, 9)))
    f = sparse_householder_qr(B)
    Q = f.explicit_q()
    np.testing.assert_allclose(Q @ f.R, B.toarray(), atol=1e-10)
    assert f.R.shape == (5, 9)


def test_rank_deficient_block(rank_deficient):
    B = rank_deficient[:, :20]
    f = sparse_householder_qr(B)
    Q = f.explicit_q()
    np.testing.assert_allclose(Q @ f.R, B.toarray(), atol=1e-9)
    d = np.abs(np.diag(f.R))
    assert np.sum(d > 1e-10 * max(d.max(), 1e-300)) <= 12


def test_zero_column():
    B = sp.csc_matrix(np.array([[1.0, 0.0], [0.0, 0.0], [1.0, 0.0]]))
    f = sparse_householder_qr(B)
    Q = f.explicit_q()
    np.testing.assert_allclose(Q @ f.R, B.toarray(), atol=1e-12)


def test_incomplete_variant_drops(tall_sparse):
    exact = sparse_householder_qr(tall_sparse)
    inc = sparse_householder_qr(tall_sparse, drop_tol=0.05)
    assert inc.reflector_nnz <= exact.reflector_nnz
    # still a usable (approximate) factorization
    Q = inc.explicit_q()
    rel = np.linalg.norm(Q @ inc.R - tall_sparse.toarray()) \
        / np.linalg.norm(tall_sparse.toarray())
    assert rel < 0.5


def test_negative_leading_entry(rng):
    """Sign-convention robustness: columns with negative pivots."""
    B = sp.csc_matrix(-np.abs(rng.standard_normal((12, 4))))
    f = sparse_householder_qr(B)
    Q = f.explicit_q()
    np.testing.assert_allclose(Q @ f.R, B.toarray(), atol=1e-11)
