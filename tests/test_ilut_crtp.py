"""Tests for repro.core.ilut_crtp (Algorithm 3 — the paper's contribution)."""

import numpy as np
import pytest

from repro import ILUT_CRTP, LU_CRTP, ilut_crtp, lu_crtp
from repro.core.ilut_crtp import default_threshold


@pytest.fixture
def filly(rng):
    """A matrix whose Schur complements fill in (scattered random pattern)."""
    from repro.matrices.generators import random_graded
    return random_graded(120, 120, nnz_per_row=10, decay_rate=7.0, seed=13)


def test_converges_with_estimator_agreement(filly):
    res = ilut_crtp(filly, k=8, tol=1e-2, estimated_iterations=8)
    assert res.converged
    # §VI-A: "In all cases, the error ... agreed with the corresponding
    # estimator": true error within tau even though (26) only estimates
    assert res.error(filly) < 1e-2
    assert res.relative_indicator() < 1e-2


def test_error_close_to_estimator(filly):
    res = ilut_crtp(filly, k=8, tol=1e-2, estimated_iterations=8)
    # |true - estimator| <= ||T|| (Section III-D)
    gap = abs(res.error(filly) - res.relative_indicator()) * res.a_fro
    assert gap <= res.dropped_norm_bound() + 1e-9


def test_thresholding_actually_drops(filly):
    res = ilut_crtp(filly, k=8, tol=1e-2, estimated_iterations=8)
    assert res.history.total_dropped_nnz > 0
    assert res.threshold > 0


def test_reduces_factor_nnz_on_filly_matrix(filly):
    lu = lu_crtp(filly, k=8, tol=1e-2)
    il = ilut_crtp(filly, k=8, tol=1e-2,
                   estimated_iterations=max(lu.iterations, 1))
    assert il.factor_nnz() < lu.factor_nnz()


def test_same_quality_as_lu(filly):
    """ILUT achieves the same approximation quality as LU_CRTP (abstract)."""
    lu = lu_crtp(filly, k=8, tol=1e-2)
    il = ilut_crtp(filly, k=8, tol=1e-2,
                   estimated_iterations=max(lu.iterations, 1))
    assert il.converged == lu.converged
    assert il.error(filly) < 1e-2


def test_iterations_not_fewer_than_lu_minus_slack(filly):
    """§III-A: ILUT converges in at least as many iterations as LU (up to
    effective-approximation slack); check it never converges dramatically
    earlier, which would indicate an accounting bug."""
    lu = lu_crtp(filly, k=8, tol=1e-2)
    il = ilut_crtp(filly, k=8, tol=1e-2,
                   estimated_iterations=max(lu.iterations, 1))
    assert il.iterations >= lu.iterations - 1


def test_explicit_mu_override(filly):
    res = ilut_crtp(filly, k=8, tol=1e-2, mu=1e-8)
    assert res.threshold == pytest.approx(1e-8)


def test_mu_zero_equals_lu_crtp(filly):
    il = ilut_crtp(filly, k=8, tol=1e-2, mu=0.0)
    lu = lu_crtp(filly, k=8, tol=1e-2)
    assert il.rank == lu.rank
    np.testing.assert_allclose(il.L.toarray(), lu.L.toarray())
    assert il.history.total_dropped_nnz == 0


def test_threshold_control_triggers_on_huge_mu(filly):
    """An absurd mu must trip the phi control (bound (22)) and disable
    thresholding rather than destroy the factorization."""
    res = ilut_crtp(filly, k=8, tol=1e-2, mu=1e6)
    assert res.control_triggered
    assert res.converged
    assert res.error(filly) < 1e-2


def test_control_never_triggered_with_heuristic(filly):
    """§VI-A: with mu from (24), 'the threshold control was never
    triggered'."""
    res = ilut_crtp(filly, k=8, tol=1e-2, estimated_iterations=8)
    assert not res.control_triggered


def test_dropped_norm_below_phi(filly):
    res = ilut_crtp(filly, k=8, tol=1e-2, estimated_iterations=8)
    r11 = None
    # phi = tau * |R^(1)(1,1)| >= accumulated perturbation
    # (reconstruct phi from the result: dropped_norm < tau * ||A||_2-ish)
    assert res.dropped_norm < res.tolerance * res.a_fro


def test_aggressive_variant(filly):
    res = ilut_crtp(filly, k=8, tol=1e-2, estimated_iterations=8,
                    aggressive=True)
    assert res.converged
    assert res.error(filly) < 1e-2
    assert res.history.total_dropped_nnz > 0


def test_default_threshold_formula():
    mu = default_threshold(1e-3, 10.0, 10000, 5)
    assert mu == pytest.approx(1e-3 * 10.0 / (5 * 100.0))
    with pytest.raises(ValueError):
        default_threshold(1e-3, 10.0, 100, 0)
    assert default_threshold(1e-3, 10.0, 0, 5) == 0.0


def test_smaller_u_larger_mu(filly):
    r_small = ilut_crtp(filly, k=8, tol=1e-2, estimated_iterations=2)
    r_large = ilut_crtp(filly, k=8, tol=1e-2, estimated_iterations=50)
    assert r_small.threshold > r_large.threshold


def test_permutations_valid(filly):
    res = ilut_crtp(filly, k=8, tol=1e-2, estimated_iterations=8)
    n = filly.shape[0]
    assert sorted(res.row_perm.tolist()) == list(range(n))
    assert sorted(res.col_perm.tolist()) == list(range(n))


def test_history_dropped_accounting(filly):
    res = ilut_crtp(filly, k=8, tol=1e-2, estimated_iterations=8)
    total_sq = sum(r.dropped_norm_sq for r in res.history)
    assert np.sqrt(total_sq) == pytest.approx(res.dropped_norm, rel=1e-10)


def test_inherits_lu_options(filly):
    res = ilut_crtp(filly, k=8, tol=1e-2, estimated_iterations=8,
                    tree="flat", use_colamd=False)
    assert res.converged


def test_dataclass_inheritance():
    solver = ILUT_CRTP(k=4, tol=1e-2, estimated_iterations=3)
    assert isinstance(solver, LU_CRTP)
    assert solver.k == 4


def test_dropped_norm_bound_dominates_control_quantity(filly):
    """Triangle bound >= the (22) control quantity, both zero without
    thresholding."""
    res = ilut_crtp(filly, k=8, tol=1e-2, estimated_iterations=8)
    assert res.dropped_norm_bound() >= res.dropped_norm - 1e-12
    plain = ilut_crtp(filly, k=8, tol=1e-2, mu=0.0)
    assert plain.dropped_norm_bound() == 0.0
