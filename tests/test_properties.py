"""Property-based tests (hypothesis) for core invariants.

Strategy helpers generate small random sparse matrices with varied shapes,
densities and magnitude ranges; properties assert the algebraic identities
every solver and kernel must satisfy regardless of input.
"""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.linalg.norms import fro_norm, fro_norm_sq
from repro.linalg.orth import orth
from repro.linalg.qrcp import qrcp
from repro.linalg.tsqr import tsqr
from repro.sparse.thresholding import drop_small, drop_sorted_budget
from repro.sparse.utils import density


@st.composite
def sparse_matrices(draw, max_dim=24):
    m = draw(st.integers(2, max_dim))
    n = draw(st.integers(2, max_dim))
    seed = draw(st.integers(0, 2 ** 16))
    dens = draw(st.floats(0.05, 0.6))
    scale = draw(st.sampled_from([1e-6, 1.0, 1e6]))
    rng = np.random.default_rng(seed)
    A = sp.random(m, n, density=dens, random_state=rng,
                  data_rvs=rng.standard_normal) * scale
    return A.tocsc()


@st.composite
def dense_tall(draw):
    m = draw(st.integers(4, 40))
    c = draw(st.integers(1, min(m, 8)))
    seed = draw(st.integers(0, 2 ** 16))
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, c))


@given(sparse_matrices())
@settings(max_examples=40, deadline=None)
def test_fro_norm_matches_dense(A):
    assert abs(fro_norm(A) - np.linalg.norm(A.toarray())) \
        <= 1e-9 * max(fro_norm(A), 1e-300)


@given(sparse_matrices(), st.floats(0.0, 2.0))
@settings(max_examples=40, deadline=None)
def test_thresholding_mass_conservation(A, mu_frac):
    """||A||^2 == ||thresholded||^2 + ||dropped||^2 for any threshold."""
    mu = mu_frac * (np.max(np.abs(A.data)) if A.nnz else 1.0)
    res = drop_small(A, mu)
    lhs = fro_norm_sq(A)
    rhs = fro_norm_sq(res.matrix) + res.dropped_norm_sq
    assert abs(lhs - rhs) <= 1e-9 * max(lhs, 1e-300)
    # every surviving entry is >= mu in magnitude
    if res.matrix.nnz and mu > 0:
        assert np.min(np.abs(res.matrix.data)) >= mu


@given(sparse_matrices(), st.floats(0.01, 10.0))
@settings(max_examples=30, deadline=None)
def test_budget_drop_never_exceeds_phi(A, phi_scale):
    phi = phi_scale * fro_norm(A) / 10
    res = drop_sorted_budget(A, phi, 0.0)
    assert np.sqrt(res.dropped_norm_sq) < phi or res.dropped_nnz == 0


@given(dense_tall())
@settings(max_examples=40, deadline=None)
def test_orth_always_orthonormal(Y):
    Q = orth(Y)
    c = Q.shape[1]
    assert np.linalg.norm(Q.T @ Q - np.eye(c)) < 1e-8


@given(dense_tall())
@settings(max_examples=40, deadline=None)
def test_qrcp_reconstruction_property(A):
    Q, R, piv = qrcp(A)
    assert np.linalg.norm(A[:, piv] - Q @ R) <= \
        1e-9 * max(np.linalg.norm(A), 1e-300)
    d = np.abs(np.diag(R))
    assert np.all(d[:-1] >= d[1:] - 1e-9 * max(d[0], 1e-300))


@given(dense_tall(), st.integers(2, 6))
@settings(max_examples=30, deadline=None)
def test_tsqr_any_blocking(A, blk_mult):
    c = A.shape[1]
    if A.shape[0] < c:
        return
    Q, R = tsqr(A, block_rows=max(c, blk_mult))
    assert np.linalg.norm(Q @ R - A) <= 1e-8 * max(np.linalg.norm(A), 1e-300)


@given(sparse_matrices(max_dim=20), st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_tournament_perm_property(A, k):
    from repro.pivoting.tournament import qr_tp
    res = qr_tp(A, k)
    n = A.shape[1]
    assert sorted(res.perm.tolist()) == list(range(n))
    assert res.winners.size == min(k, n)


@given(sparse_matrices(max_dim=20))
@settings(max_examples=20, deadline=None)
def test_colamd_permutation_property(A):
    from repro.ordering.colamd import colamd
    p = colamd(A)
    assert sorted(p.tolist()) == list(range(A.shape[1]))


@given(sparse_matrices(max_dim=16))
@settings(max_examples=15, deadline=None)
def test_lu_crtp_indicator_equals_error(A):
    """The load-bearing identity of the paper's LU_CRTP adaptation:
    indicator (9) == true permuted error, for arbitrary inputs."""
    from repro import lu_crtp
    res = lu_crtp(A, k=4, tol=0.5, max_rank=min(A.shape))
    if res.rank == 0:
        return
    true = res.error(A)
    rel = res.relative_indicator()
    assert abs(true - rel) <= 1e-6 * max(rel, 1e-9) + 1e-9


@given(sparse_matrices(max_dim=16), st.integers(0, 1))
@settings(max_examples=15, deadline=None)
def test_randqb_indicator_never_underestimates_grossly(A, p):
    from repro import randqb_ei
    res = randqb_ei(A, k=4, tol=0.5, power=p, max_rank=min(A.shape))
    true = res.error(A)
    rel = res.relative_indicator()
    # identity holds up to cancellation at machine-precision level
    assert abs(true - rel) <= 1e-6 + 1e-4 * max(true, rel)


@given(sparse_matrices())
@settings(max_examples=30, deadline=None)
def test_density_bounds(A):
    d = density(A)
    assert 0.0 <= d <= 1.0


@given(st.integers(1, 50), st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_block_ranges_partition(n, p):
    from repro.parallel.distribution import block_ranges
    r = block_ranges(n, p)
    assert r[0][0] == 0 and r[-1][1] == n
    for (_, b), (c, _d) in zip(r, r[1:]):
        assert b == c
    sizes = [hi - lo for lo, hi in r]
    assert max(sizes) - min(sizes) <= 1


@given(dense_tall())
@settings(max_examples=30, deadline=None)
def test_cholqr2_reconstruction_property(B):
    from repro.linalg.cholqr import cholqr2
    Q, R, _ = cholqr2(B)
    assert np.linalg.norm(Q @ R - B) <= 1e-7 * max(np.linalg.norm(B), 1e-300)


@given(dense_tall())
@settings(max_examples=20, deadline=None)
def test_jacobi_svd_property(A):
    from repro.linalg.bidiag_svd import jacobi_svd
    U, s, Vt = jacobi_svd(A)
    ref = np.linalg.svd(A, compute_uv=False)
    assert np.allclose(s, ref, atol=1e-8 * max(ref[0] if len(ref) else 1.0,
                                               1e-300))


@given(dense_tall(), st.integers(2, 16))
@settings(max_examples=20, deadline=None)
def test_blocked_qr_property(A, block):
    from repro.linalg.wy import blocked_qr
    Q, R = blocked_qr(A, block=block)
    assert np.linalg.norm(Q @ R - A) <= 1e-8 * max(np.linalg.norm(A), 1e-300)
    p = Q.shape[1]
    assert np.linalg.norm(Q.T @ Q - np.eye(p)) < 1e-8


@given(sparse_matrices(max_dim=20))
@settings(max_examples=20, deadline=None)
def test_mmio_roundtrip_property(A):
    import io
    from repro.matrices.mmio import read_matrix_market, write_matrix_market
    buf = io.StringIO()
    write_matrix_market(A, buf)
    buf.seek(0)
    B = read_matrix_market(buf)
    assert (A != B).nnz == 0


@given(sparse_matrices(max_dim=18), st.integers(1, 5))
@settings(max_examples=15, deadline=None)
def test_fixed_rank_qb_rank_property(A, rank):
    from repro.core.fixed_rank import fixed_rank_qb
    r = min(rank, min(A.shape))
    res = fixed_rank_qb(A, r, k=max(r // 2, 1))
    assert res.rank == r
