"""Tests for repro.sparse.thresholding (ILUT dropping policies)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.thresholding import drop_small, drop_sorted_budget


def matrix_with_values(vals):
    vals = np.asarray(vals, dtype=float)
    n = len(vals)
    return sp.csc_matrix((vals, (np.arange(n), np.arange(n))), shape=(n, n))


def test_drop_small_basic():
    A = matrix_with_values([5.0, 0.1, -0.01, 3.0, -0.2])
    res = drop_small(A, 0.15)
    assert res.dropped_nnz == 2  # 0.1 and -0.01
    assert res.dropped_norm_sq == pytest.approx(0.1 ** 2 + 0.01 ** 2)
    assert res.dropped_max == pytest.approx(0.1)
    assert res.matrix.nnz == 3


def test_drop_small_strict_inequality():
    A = matrix_with_values([0.5, 1.0])
    res = drop_small(A, 0.5)  # |a| < mu is strict: 0.5 survives
    assert res.dropped_nnz == 0


def test_drop_small_noop():
    A = matrix_with_values([1.0, 2.0])
    res = drop_small(A, 0.0)
    assert res.dropped_nnz == 0
    assert res.matrix.nnz == 2


def test_drop_small_does_not_mutate_input():
    A = matrix_with_values([1.0, 0.001])
    nnz0 = A.nnz
    drop_small(A, 0.1)
    assert A.nnz == nnz0


def test_drop_small_perturbation_identity():
    """||A||_F^2 == ||A_thresholded||_F^2 + ||T~||_F^2 exactly."""
    rng = np.random.default_rng(3)
    A = sp.random(40, 40, density=0.2, random_state=rng,
                  data_rvs=rng.standard_normal).tocsc()
    res = drop_small(A, 0.3)
    lhs = np.dot(A.data, A.data)
    rhs = np.dot(res.matrix.data, res.matrix.data) + res.dropped_norm_sq
    assert lhs == pytest.approx(rhs, rel=1e-12)


def test_drop_sorted_budget_respects_phi():
    A = matrix_with_values([1.0, 0.4, 0.3, 0.2, 0.1])
    phi = 0.38  # budget_sq = 0.1444: can drop 0.1 (0.01) + 0.2 (0.05) +
    # 0.3 would make 0.14 <= 0.1444 -> allowed; +0.4 would blow it
    res = drop_sorted_budget(A, phi, 0.0)
    assert res.dropped_nnz == 3
    assert np.sqrt(res.dropped_norm_sq) < phi


def test_drop_sorted_budget_spent_budget():
    A = matrix_with_values([0.1, 0.2])
    res = drop_sorted_budget(A, phi=0.2, spent_sq=0.2 ** 2)
    assert res.dropped_nnz == 0


def test_drop_sorted_budget_cap():
    A = matrix_with_values([10.0, 0.5, 0.01])
    # only entries below cap participate, regardless of budget
    res = drop_sorted_budget(A, phi=100.0, spent_sq=0.0, cap=0.1)
    assert res.dropped_nnz == 1
    assert res.matrix.nnz == 2


def test_drop_sorted_budget_drops_smallest_first():
    A = matrix_with_values([0.3, 0.1, 0.2])
    res = drop_sorted_budget(A, phi=0.15, spent_sq=0.0)
    # budget_sq = 0.0225: 0.1^2 = 0.01 ok; +0.2^2 = 0.05 too much
    assert res.dropped_nnz == 1
    remaining = sorted(np.abs(res.matrix.data))
    assert remaining == [pytest.approx(0.2), pytest.approx(0.3)]


def test_empty_matrix():
    A = sp.csc_matrix((4, 4))
    assert drop_small(A, 1.0).dropped_nnz == 0
    assert drop_sorted_budget(A, 1.0, 0.0).dropped_nnz == 0
