"""Tests for repro.linalg.random_gen (sketching operators)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg.random_gen import (
    SketchKind,
    gaussian,
    make_sketch,
    rademacher,
    sparse_sign,
)


def test_gaussian_shape_and_moments(rng):
    Om = gaussian(2000, 3, rng)
    assert Om.shape == (2000, 3)
    assert abs(Om.mean()) < 0.05
    assert Om.std() == pytest.approx(1.0, abs=0.05)


def test_rademacher_entries(rng):
    Om = rademacher(50, 4, rng)
    assert set(np.unique(Om)) <= {-1.0, 1.0}


def test_sparse_sign_structure(rng):
    Om = sparse_sign(100, 8, rng, density_rows=8)
    assert sp.issparse(Om)
    assert Om.shape == (100, 8)
    col_nnz = np.diff(Om.tocsc().indptr)
    assert np.all(col_nnz == 8)


def test_sparse_sign_small_n(rng):
    Om = sparse_sign(4, 3, rng, density_rows=8)  # zeta clamped to n
    assert np.all(np.diff(Om.tocsc().indptr) == 4)


def test_make_sketch_dispatch(rng):
    for kind in SketchKind:
        Om = make_sketch(kind, 30, 5, rng)
        assert Om.shape == (30, 5)
    Om = make_sketch("gaussian", 10, 2, rng)
    assert Om.shape == (10, 2)


def test_make_sketch_unknown(rng):
    with pytest.raises(ValueError):
        make_sketch("bogus", 10, 2, rng)


def test_sketch_preserves_norms_statistically(rng):
    """E||A Omega||_F^2 = k ||A||_F^2 / ... sketches are isotropic."""
    A = rng.standard_normal((20, 200))
    a2 = np.linalg.norm(A) ** 2
    for kind in (SketchKind.GAUSSIAN, SketchKind.RADEMACHER):
        vals = []
        for seed in range(20):
            Om = make_sketch(kind, 200, 10, np.random.default_rng(seed))
            vals.append(np.linalg.norm(A @ Om) ** 2 / 10)
        assert np.mean(vals) == pytest.approx(a2, rel=0.2)


def test_fwht_matches_explicit_hadamard(rng):
    from repro.linalg.random_gen import fwht
    n = 16
    H = np.array([[1.0]])
    while H.shape[0] < n:
        H = np.block([[H, H], [H, -H]])
    x = rng.standard_normal((n, 3))
    np.testing.assert_allclose(fwht(x), H @ x, atol=1e-12)


def test_fwht_orthogonality(rng):
    from repro.linalg.random_gen import fwht
    x = rng.standard_normal(32)
    y = fwht(x) / np.sqrt(32)
    assert np.linalg.norm(y) == pytest.approx(np.linalg.norm(x))


def test_fwht_requires_power_of_two(rng):
    from repro.linalg.random_gen import fwht
    with pytest.raises(ValueError):
        fwht(rng.standard_normal(12))


def test_srht_shape_and_isotropy():
    from repro.linalg.random_gen import srht
    acc = np.zeros((12, 12))
    trials = 200
    for s in range(trials):
        Om = srht(12, 6, np.random.default_rng(s))
        assert Om.shape == (12, 6)
        acc += Om @ Om.T / trials
    assert np.linalg.norm(acc - np.eye(12)) / np.sqrt(12) < 0.2


def test_srht_non_power_of_two_n():
    from repro.linalg.random_gen import srht
    Om = srht(13, 4, np.random.default_rng(0))
    assert Om.shape == (13, 4)
    assert np.all(np.isfinite(Om))


def test_srht_in_randqb():
    from repro import randqb_ei
    from repro.matrices.generators import random_graded
    A = random_graded(100, 100, nnz_per_row=6, decay_rate=8.0, seed=2)
    res = randqb_ei(A, k=8, tol=1e-2, sketch="srht")
    assert res.converged
    assert res.error(A) < 1e-2
