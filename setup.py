"""Legacy setup shim.

Kept so ``pip install -e .`` works in offline environments without the
``wheel`` package (pip falls back to ``setup.py develop`` when no
``[build-system]`` table is present).  All metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
