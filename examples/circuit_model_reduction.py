#!/usr/bin/env python
"""Circuit-simulation model reduction (the M4/rajat23 regime).

Circuit conductance matrices have a few dominant directions (supply rails,
common nets).  This example compresses one at a ladder of tolerances and
shows the paper's M4 phenomenon: at tau=0.1 a *single* block of tournament
pivots already meets the target, and the deterministic factors stay sparse
because hub-dominated circuits produce almost no Schur-complement fill.

The compressed representation is then used for fast repeated matrix-vector
products — the downstream operation circuit pre-analysis cares about.

Run:  python examples/circuit_model_reduction.py
"""

import numpy as np

from repro import lu_crtp, randqb_ei
from repro.analysis.tables import render_table
from repro.matrices import circuit_network


def main():
    n = 1200
    A = circuit_network(n, avg_degree=4.0, hubs=n // 16, hub_scale=300.0,
                        seed=4)
    print(f"Circuit matrix: {n}x{n}, nnz={A.nnz} "
          f"({A.nnz / n:.1f} per row)\n")

    rows = []
    for tol in (1e-1, 1e-2, 1e-3):
        qb = randqb_ei(A, k=32, tol=tol, power=1)
        lu = lu_crtp(A, k=32, tol=tol)
        max_fill = max((r.schur_density for r in lu.history), default=0.0)
        rows.append([f"{tol:.0e}", qb.rank, qb.iterations,
                     f"{qb.elapsed:.2f}s", lu.rank, lu.iterations,
                     f"{lu.elapsed:.2f}s", lu.factor_nnz(),
                     f"{max_fill:.4f}"])
    print(render_table(
        ["tau", "QB rank", "QB its", "QB time", "LU rank", "LU its",
         "LU time", "LU factor nnz", "max Schur density"],
        rows, title="Compression ladder (RandQB_EI p=1 vs LU_CRTP, k=32)"))

    # the one-iteration regime: at tau=0.1 the tournament's first k columns
    # capture ~99% of the Frobenius mass
    lu1 = lu_crtp(A, k=32, tol=1e-1)
    print(f"\nAt tau=0.1 LU_CRTP needed {lu1.iterations} iteration(s) — "
          "the dominant hub directions carry almost all the mass.")

    # downstream: repeated applications of the compressed operator
    qb = randqb_ei(A, k=32, tol=1e-2, power=1)
    rng = np.random.default_rng(7)
    X = rng.standard_normal((n, 50))
    Y_exact = A @ X
    Y_approx = qb.apply(X)
    rel = np.linalg.norm(Y_exact - Y_approx) / np.linalg.norm(Y_exact)
    dense_flops = 2 * n * n * 50
    lowrank_flops = 2 * (n + n) * qb.rank * 50
    print(f"\n50 matvecs through the rank-{qb.rank} model: "
          f"relative error {rel:.1e}, "
          f"{dense_flops / lowrank_flops:.1f}x fewer flops than dense.")


if __name__ == "__main__":
    main()
