#!/usr/bin/env python
"""The solve service: caching, τ-dominance, batching and metrics.

Spins up the in-process asyncio solve service, submits a small multi-
tenant workload against one suite matrix and shows what the serving layer
does that a bare solver call cannot:

- the second identical request is a **cache hit** (no factorization runs),
- a looser-tolerance request is served from a tighter cached
  factorization (**τ-dominance**),
- simultaneous same-matrix jobs share one factorization pass
  (**batching**),
- the metrics endpoint reports queue depth, hit rate and p50/p95 latency.

Run:  python examples/solve_service.py
"""

from repro.api import SolverConfig
from repro.service import MatrixSpec, ServiceClient, SolveRequest


def main():
    matrix = MatrixSpec(suite="M4", scale=0.5)

    # one worker so the burst below queues up and batches deterministically
    with ServiceClient(workers=1, cache_capacity=16) as client:
        base = SolveRequest(matrix=matrix, method="lu",
                            config=SolverConfig(k=16, tol=1e-2))

        first = client.solve(base)
        print(f"first solve : cache={first['cache']:<9} "
              f"rank={first['result']['rank']} "
              f"iters={first['result']['iterations']}")

        again = client.solve(base)
        print(f"same again  : cache={again['cache']:<9} (no solver ran)")

        loose = SolveRequest(matrix=matrix, method="lu",
                             config=SolverConfig(k=16, tol=1e-1))
        dom = client.solve(loose)
        print(f"looser tau  : cache={dom['cache']:<9} "
              "(tighter cached factorization dominates)")

        # a burst of same-matrix randomized jobs: queued together, they
        # share one sketch pass at the tightest tolerance
        reqs = [SolveRequest(matrix=matrix, method="randqb",
                             config=SolverConfig(k=16, tol=tol, power=1))
                for tol in (2e-1, 1e-1, 5e-2)]
        ids = [client.submit(r) for r in reqs]
        for jid in ids:
            r = client.wait(jid)
            print(f"burst job   : cache={r['cache']:<9} "
                  f"state={r['state']}")

        m = client.metrics()
        print(f"\nmetrics: queue_depth={m['queue_depth']} "
              f"hit_rate={m['cache']['hit_rate']:.2f} "
              f"p50={m['latency']['p50'] * 1e3:.1f}ms "
              f"p95={m['latency']['p95'] * 1e3:.1f}ms")
        print(f"counters: {m['counters']}")


if __name__ == "__main__":
    main()
