#!/usr/bin/env python
"""Quickstart: fixed-precision low-rank approximation of a sparse matrix.

Builds a sparse test matrix, runs the four fixed-precision methods of the
paper with the same uniform termination criterion, and compares achieved
rank, runtime, factor storage and exact error.

Run:  python examples/quickstart.py
"""

from repro.api import SolverConfig, make_solver
from repro.analysis.tables import render_table
from repro.matrices import random_graded


def main():
    # a 500x500 sparse matrix with exponentially decaying singular values
    # and heavy-tailed entry magnitudes (a "fluid dynamics"-like problem)
    A = random_graded(500, 500, nnz_per_row=12, decay_rate=8.0,
                      value_spread=1.5, two_sided=True, seed=0)
    config = SolverConfig(k=16, tol=1e-2, power=1)
    print(f"Input: {A.shape[0]}x{A.shape[1]} sparse, nnz={A.nnz}, "
          f"target relative error tau={config.tol:g}\n")

    # one registry, one config shape: any alias ("qb", "randqb_ei", ...)
    # resolves through repro.api.SOLVERS
    results = {}
    results["RandQB_EI (p=1)"] = make_solver("randqb", config).solve(A)
    results["RandUBV"] = make_solver("ubv", config).solve(A)
    lu = make_solver("lu", config).solve(A)
    results["LU_CRTP"] = lu
    results["ILUT_CRTP"] = make_solver("ilut", config.replace(
        estimated_iterations=max(lu.iterations, 1))).solve(A)

    rows = []
    for name, r in results.items():
        rows.append([name, r.rank, r.iterations, f"{r.elapsed:.3f}s",
                     r.factor_nnz(), f"{r.error(A):.2e}",
                     "yes" if r.converged else "NO"])
    print(render_table(
        ["method", "rank K", "iters", "time", "factor nnz", "true error",
         "converged"],
        rows, title="Fixed-precision solvers at tau=1e-2"))

    # the deterministic factors are sparse; the randomized ones are dense
    print("\nKey takeaway: all methods reach the same accuracy; the LU-based"
          "\nfactors are sparse (and ILUT_CRTP's are the sparsest), while"
          "\nthe randomized factors are dense but produced at steadier cost.")

    # downstream use: apply the approximation to a vector without forming it
    import numpy as np
    x = np.random.default_rng(1).standard_normal(A.shape[1])
    qb = results["RandQB_EI (p=1)"]
    y = qb.apply(x)  # Q @ (B @ x): O((m+n)K) instead of O(m n)
    print(f"\napply() check: ||A x - QB x|| / ||A x|| = "
          f"{np.linalg.norm(A @ x - y) / np.linalg.norm(A @ x):.2e}")


if __name__ == "__main__":
    main()
