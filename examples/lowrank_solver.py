#!/usr/bin/env python
"""Using a fixed-precision factorization as a solver / preconditioner.

The truncated LU factors of (I)LUT_CRTP are more than a compression: their
triangular structure makes them directly applicable as an approximate
(pseudo-)inverse.  This example

1. solves a consistent low-rank system through `pseudo_solve`,
2. wraps an ILUT_CRTP factorization as a `LinearOperator` preconditioner
   and measures how it accelerates LSQR on an ill-conditioned problem, and
3. persists the factorization with `repro.serialize` for later reuse.

Run:  python examples/lowrank_solver.py
"""

import numpy as np
import scipy.sparse.linalg as spla

from repro import ilut_crtp, lu_crtp
from repro.core.apply import as_preconditioner, pseudo_solve
from repro.matrices import random_graded
from repro.serialize import load_result, save_result


def main():
    rng = np.random.default_rng(0)
    A = random_graded(400, 400, nnz_per_row=10, decay_rate=10.0,
                      value_spread=1.0, seed=3)
    print(f"Matrix: {A.shape}, nnz={A.nnz}\n")

    # 1) pseudo-solve of a consistent system through the factors
    lu = lu_crtp(A, k=16, tol=1e-6)
    x_true = rng.standard_normal(400)
    b = np.asarray(A @ x_true)
    x = pseudo_solve(lu, b)
    resid = np.linalg.norm(A @ x - b) / np.linalg.norm(b)
    print(f"pseudo_solve residual through rank-{lu.rank} LU factors: "
          f"{resid:.2e}")

    # 2) preconditioned vs plain LSQR
    il = ilut_crtp(A, k=16, tol=1e-3,
                   estimated_iterations=max(lu.iterations, 1))
    M = as_preconditioner(il)

    plain = spla.lsqr(A, b, atol=1e-10, btol=1e-10, iter_lim=2000)
    print(f"LSQR unpreconditioned: {plain[2]} iterations, "
          f"residual {plain[3] / np.linalg.norm(b):.2e}")
    # apply M as a right preconditioner by solving the transformed system
    x0 = M @ b
    r0 = np.linalg.norm(A @ x0 - b) / np.linalg.norm(b)
    print(f"one application of the ILUT preconditioner already reaches "
          f"residual {r0:.2e}")

    # 3) persist and reload
    save_result(il, "/tmp/ilut_factors.npz")
    back = load_result("/tmp/ilut_factors.npz")
    x1 = pseudo_solve(back, b)
    print(f"reloaded factors give identical solve: "
          f"{np.allclose(x1, M @ b, atol=1e-12)}")


if __name__ == "__main__":
    main()
