#!/usr/bin/env python
"""One-command miniature reproduction of the paper's evaluation.

Runs a scaled-down version of every experiment (Table II ladder, Fig. 1
fill-in + thresholding, Fig. 2 min-rank, Fig. 4 scaling) on two suite
analogues and writes a markdown report to ``reproduction_report.md``.

For the full-fidelity harness use ``pytest benchmarks/ --benchmark-only``;
this script is the 60-second tour.  Set ``REPRO_SUITESPARSE_DIR`` to a
directory of real SuiteSparse ``.mtx`` files to run on the paper's actual
matrices (see repro.matrices.suitesparse).

Run:  python examples/full_reproduction.py
"""

import time
from pathlib import Path

from repro import ilut_crtp, lu_crtp, randqb_ei, randubv
from repro.analysis.minrank import minimum_rank_curve
from repro.analysis.tables import render_table
from repro.matrices.suitesparse import load_paper_matrix
from repro.parallel import (
    ScalingCurve,
    simulate_ilut_crtp,
    simulate_lu_crtp,
    simulate_randqb_ei,
    strong_scaling,
)

SCALE = 0.4
LABELS = ("M2", "M4")
TOLS = (1e-1, 1e-2)
K = 16
REPORT = Path("reproduction_report.md")


def table2_block(label, A):
    rows = []
    for tol in TOLS:
        ubv = randubv(A, k=K, tol=tol)
        p0 = randqb_ei(A, k=K, tol=tol, power=0)
        p1 = randqb_ei(A, k=K, tol=tol, power=1)
        lu = lu_crtp(A, k=K, tol=tol)
        il = ilut_crtp(A, k=K, tol=tol,
                       estimated_iterations=max(lu.iterations, 1))
        ratio = lu.factor_nnz() / max(il.factor_nnz(), 1)
        rows.append([f"{tol:.0e}", ubv.iterations, p0.iterations,
                     p1.iterations, lu.iterations,
                     f"{lu.elapsed:.2f}", f"{il.elapsed:.2f}",
                     f"{ratio:.1f}", f"{il.threshold:.1e}"])
    return render_table(
        ["tau", "itsUBV", "its_p0", "its_p1", "itsLU", "t_LU[s]",
         "t_ILUT[s]", "ratioNNZ", "mu"],
        rows, title=f"Table II block — {label}")


def fig1_block(label, A):
    lu = lu_crtp(A, k=K, tol=TOLS[-1])
    il = ilut_crtp(A, k=K, tol=TOLS[-1],
                   estimated_iterations=max(lu.iterations, 1))
    rows = [[r_lu.iteration, f"{r_lu.schur_density:.4f}",
             f"{r_il.schur_density:.4f}"]
            for r_lu, r_il in zip(lu.history, il.history)]
    return render_table(["iter", "LU density", "ILUT density"], rows,
                        title=f"Fig. 1 (right) block — {label}")


def fig4_block(label, A):
    qb = randqb_ei(A, k=K, tol=TOLS[-1], power=1)
    lu = lu_crtp(A, k=K, tol=TOLS[-1])
    il = ilut_crtp(A, k=K, tol=TOLS[-1],
                   estimated_iterations=max(lu.iterations, 1))
    ps = [1, 4, 16, 64, 256]
    curves = [
        ScalingCurve.from_reports("RandQB_EI", strong_scaling(
            lambda p: simulate_randqb_ei(qb, A, p, k=K, power=1), ps)),
        ScalingCurve.from_reports("LU_CRTP", strong_scaling(
            lambda p: simulate_lu_crtp(lu, p), ps)),
        ScalingCurve.from_reports("ILUT_CRTP", strong_scaling(
            lambda p: simulate_ilut_crtp(il, p), ps)),
    ]
    from repro.parallel import speedup_table
    return (f"Fig. 4 block — {label}\n" + speedup_table(curves))


def main():
    t0 = time.time()
    sections = ["# Miniature reproduction report\n"]
    for label in LABELS:
        A = load_paper_matrix(label, scale=SCALE)
        sections.append(f"\n## {label} ({A.shape[0]}x{A.shape[1]}, "
                        f"nnz={A.nnz})\n")
        for block in (table2_block, fig1_block, fig4_block):
            text = block(label, A)
            sections.append("```\n" + text + "\n```\n")
            print(text, "\n")
        mr = minimum_rank_curve(A, list(TOLS))
        line = (f"Minimum rank required (TSVD): " +
                ", ".join(f"tau={t:g}: {r}" for t, r in mr.items()))
        sections.append(line + "\n")
        print(line, "\n")
    sections.append(f"\n_Total runtime: {time.time() - t0:.1f}s_\n")
    REPORT.write_text("\n".join(sections))
    print(f"report written to {REPORT.resolve()}")


if __name__ == "__main__":
    main()
