#!/usr/bin/env python
"""Minimum-rank analysis of a structural (FEM) problem — Figs. 2-3 style.

Structural stiffness matrices decay slowly, so high approximation quality
requires large rank (the paper's M1/M5 long-tail regime).  This example
computes, per tolerance:

- the exact minimum rank required (from the full spectrum — Eckart-Young),
- the cheap RandQB_EI-based approximation of that minimum rank, and
- the rank each fixed-precision solver actually uses,

quantifying each method's rank overshoot.

Run:  python examples/structural_min_rank.py
"""

from repro import lu_crtp, randqb_ei
from repro.analysis.minrank import approx_minimum_rank_curve, minimum_rank_curve
from repro.analysis.tables import render_table
from repro.matrices import grid_stiffness


def main():
    A = grid_stiffness(22, 22, coeff_jitter=0.8, seed=2)
    n = A.shape[0]
    print(f"Structural stiffness: {n}x{n}, nnz={A.nnz}\n")

    tols = [3e-1, 1e-1, 3e-2, 1e-2]
    exact = minimum_rank_curve(A, tols)
    approx = approx_minimum_rank_curve(A, tols, k=16, power=2)

    rows = []
    for tol in tols:
        qb = randqb_ei(A, k=16, tol=tol, power=1)
        lu = lu_crtp(A, k=16, tol=tol)
        rows.append([f"{tol:.0e}", exact[tol],
                     f"{100 * exact[tol] / n:.0f}%", approx[tol],
                     qb.rank, lu.rank])
    print(render_table(
        ["tau", "min rank (TSVD)", "% of n", "min rank (RandQB est.)",
         "RandQB_EI rank", "LU_CRTP rank"],
        rows,
        title="Minimum rank required vs rank used (slow-decay problem)"))

    print("\nReading: the TSVD column is the Eckart-Young optimum; the "
          "RandQB estimate\ntracks it cheaply (Fig. 2's asterisks vs "
          "circles); the solvers overshoot by\nup to one block size since "
          "rank grows in steps of k.")


if __name__ == "__main__":
    main()
