#!/usr/bin/env python
"""Fill-in and thresholding: why ILUT_CRTP exists (the M2/raefsky3 regime).

A matrix with scattered sparsity and heavy-tailed values makes LU_CRTP's
Schur complements fill in — every iteration gets slower and the truncated
factors bloat.  This example traces the fill-in progression (Fig. 1 right),
then shows ILUT_CRTP's thresholding collapsing both the runtime and the
factor storage at no accuracy loss, and demonstrates the threshold-control
safety net (bound (22)) on a deliberately absurd threshold.

Run:  python examples/fillin_and_thresholding.py
"""

from repro import ilut_crtp, lu_crtp
from repro.analysis.tables import render_table
from repro.matrices import suite_matrix


def main():
    A = suite_matrix("M2", scale=0.6)  # raefsky3 analogue
    tol = 1e-2
    k = 16
    print(f"Fluid-dynamics analogue: {A.shape[0]}x{A.shape[1]}, "
          f"nnz={A.nnz}\n")

    lu = lu_crtp(A, k=k, tol=tol)
    il = ilut_crtp(A, k=k, tol=tol,
                   estimated_iterations=max(lu.iterations, 1))

    # Fig. 1 (right): density of the active matrix after each iteration
    rows = []
    for rec_lu, rec_il in zip(lu.history, il.history):
        rows.append([rec_lu.iteration,
                     f"{rec_lu.schur_density:.4f}",
                     f"{rec_il.schur_density:.4f}",
                     rec_il.dropped_nnz])
    print(render_table(
        ["iter", "LU_CRTP density", "ILUT density", "entries dropped"],
        rows, title="Schur-complement fill-in per iteration"))

    ratio = lu.factor_nnz() / il.factor_nnz()
    speedup = lu.elapsed / max(il.elapsed, 1e-12)
    print(f"\nLU_CRTP:   rank {lu.rank}, {lu.elapsed:.2f}s, "
          f"factor nnz {lu.factor_nnz()}")
    print(f"ILUT_CRTP: rank {il.rank}, {il.elapsed:.2f}s, "
          f"factor nnz {il.factor_nnz()}")
    print(f"ratio_NNZ = {ratio:.1f}, speedup = {speedup:.1f}x, "
          f"mu = {il.threshold:.2e}")
    print(f"true errors: LU {lu.error(A):.2e}, ILUT {il.error(A):.2e} "
          f"(both under tau={tol:g})")

    # the safety net: an absurd threshold trips the phi control and the
    # algorithm falls back to exact Schur complements instead of failing
    safe = ilut_crtp(A, k=k, tol=tol, mu=1e9)
    print(f"\nWith mu=1e9 the control (22) triggered: "
          f"{safe.control_triggered}; still converged: {safe.converged} "
          f"(error {safe.error(A):.2e})")


if __name__ == "__main__":
    main()
