#!/usr/bin/env python
"""Strong-scaling study on the simulated distributed machine (Fig. 4 style).

Runs the sequential solvers once to record their algorithm traces, then
replays the traces through the alpha-beta-gamma machine model across a
process-count sweep — the same methodology the benches use for Fig. 4.
Also demonstrates the *executable* SPMD layer at small process counts.

Run:  python examples/parallel_scaling_study.py
"""

from repro import ilut_crtp, lu_crtp, randqb_ei
from repro.matrices import suite_matrix
from repro.parallel import (
    ScalingCurve,
    run_spmd,
    simulate_ilut_crtp,
    simulate_lu_crtp,
    simulate_randqb_ei,
    spmd_randqb_ei,
    speedup_table,
    strong_scaling,
)


def main():
    A = suite_matrix("M2", scale=0.6)
    k, tol = 16, 1e-2
    print(f"Problem: M2 analogue {A.shape}, nnz={A.nnz}, k={k}, "
          f"tau={tol:g}\n")

    # 1) sequential runs record the traces
    qb = randqb_ei(A, k=k, tol=tol, power=1)
    lu = lu_crtp(A, k=k, tol=tol)
    il = ilut_crtp(A, k=k, tol=tol,
                   estimated_iterations=max(lu.iterations, 1))

    # 2) replay through the machine model across a P sweep
    ps = [1, 4, 16, 64, 256, 1024, 4096]
    curves = [
        ScalingCurve.from_reports("RandQB_EI p=1", strong_scaling(
            lambda p: simulate_randqb_ei(qb, A, p, k=k, power=1), ps)),
        ScalingCurve.from_reports("LU_CRTP", strong_scaling(
            lambda p: simulate_lu_crtp(lu, p), ps)),
        ScalingCurve.from_reports("ILUT_CRTP", strong_scaling(
            lambda p: simulate_ilut_crtp(il, p), ps)),
    ]
    print(speedup_table(curves))
    for c in curves:
        print(f"{c.label:16s} stops scaling near np = "
              f"{c.saturation_nprocs()}")

    # 3) the executable SPMD layer: real distributed execution at small P
    out = run_spmd(4, spmd_randqb_ei, A, k=k, tol=tol, seed=0)
    _, _, K, conv = out["results"][0]
    print(f"\nExecutable SPMD RandQB_EI on 4 ranks: rank {K}, "
          f"converged={conv}, modeled time {out['elapsed'] * 1e3:.2f} ms")
    print("per-kernel modeled seconds (max over ranks):")
    for kernel, secs in sorted(out["kernel_seconds"].items()):
        print(f"  {kernel:14s} {secs * 1e3:8.3f} ms")


if __name__ == "__main__":
    main()
