#!/usr/bin/env python
"""Spectral graph embedding through fixed-precision low-rank approximation.

Embedding the nodes of a graph into a low-dimensional space usually means
computing leading eigenvectors of the (normalized) adjacency — but how many
dimensions are enough?  The fixed-precision formulation answers that
automatically: run RandQB_EI to a target energy tolerance and let the rank
fall out.  This example

1. builds a scale-free interaction graph and a user-item matrix,
2. embeds both at a tolerance ladder, showing the automatic rank choice,
3. validates the embedding by reconstructing held-out interactions.

Run:  python examples/graph_embedding.py
"""

import numpy as np

from repro import randqb_ei
from repro.analysis.tables import render_table
from repro.matrices.graph import bipartite_interaction, scale_free_adjacency


def main():
    # 1) scale-free graph: hub structure => fast spectral decay
    A = scale_free_adjacency(1500, m_edges=3, seed=2)
    print(f"Scale-free graph adjacency: {A.shape}, nnz={A.nnz}\n")

    rows = []
    for tol in (3e-1, 2e-1, 1e-1):
        res = randqb_ei(A, k=16, tol=tol, power=1)
        rows.append([f"{tol:.0e}", res.rank,
                     f"{100 * res.rank / A.shape[0]:.1f}%",
                     f"{res.elapsed:.3f}s"])
    print(render_table(
        ["energy tol", "embedding dim", "% of n", "time"],
        rows, title="Automatic embedding dimension vs tolerance"))

    # 2) recommender-style rectangular matrix
    R = bipartite_interaction(1200, 400, interactions_per_user=10, seed=3)
    res = randqb_ei(R, k=16, tol=2e-1, power=1)
    U, s, Vt = res.to_svd()
    print(f"\nUser-item matrix {R.shape}, nnz={R.nnz}: rank "
          f"{res.rank} factorization at 80% energy "
          f"({res.elapsed:.2f}s)")

    # 3) sanity: reconstruction ranks true interactions above random pairs
    rng = np.random.default_rng(0)
    Rd = R.toarray()
    approx = (U * s) @ Vt
    users = rng.integers(0, 1200, size=2000)
    true_items = []
    for u in users:
        nz = Rd[u].nonzero()[0]
        true_items.append(int(nz[rng.integers(len(nz))]))
    rand_items = rng.integers(0, 400, size=2000)
    score_true = approx[users, true_items].mean()
    score_rand = approx[users, rand_items].mean()
    print(f"mean predicted score — observed pairs: {score_true:.3f}, "
          f"random pairs: {score_rand:.3f} "
          f"({'OK' if score_true > 2 * abs(score_rand) else 'weak'})")


if __name__ == "__main__":
    main()
